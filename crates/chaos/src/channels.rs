//! Time-varying channel models.
//!
//! The paper's channel model (PAPER.md §2.2) assumes independent bit errors
//! at one stationary BER. Real fabrics break that assumption in three
//! characteristic ways, each modelled here as an implementation of the
//! [`Channel`] trait from `rxl-link`:
//!
//! * [`GilbertElliott`] — a two-state bursty channel: long stretches of a
//!   *good* BER interrupted by *bad*-state storms with a much higher BER,
//!   the classic model for correlated link-quality excursions;
//! * [`BerSchedule`] — a piecewise-stationary BER: the channel switches
//!   between static operating points at configured simulation times
//!   (degradation ramps, maintenance windows);
//! * [`FlapChannel`] — a link that periodically goes *down* (every flit
//!   garbled beyond FEC correction, i.e. lost) and comes back up.
//!
//! All three follow the RNG-draw-order rules documented on [`Channel`]:
//! randomness only from the passed RNG, draw counts a deterministic function
//! of channel state and inputs, and **no draws for deterministic decisions**
//! — a Gilbert–Elliott channel pinned to its good state by zero transition
//! probabilities, or an all-ideal schedule, consumes exactly the draws of
//! the static model it degenerates to (none, when ideal), which keeps it
//! bit-identical to [`ChannelErrorModel::ideal`].

use rand::{Rng, RngCore};
use rxl_link::{Channel, ChannelErrorModel};

/// Which state a [`GilbertElliott`] channel is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GeState {
    /// The low-BER operating state.
    Good,
    /// The high-BER storm state.
    Bad,
}

/// A two-state Gilbert–Elliott bursty channel.
///
/// Before each flit traversal the state machine takes one step: from `Good`
/// it enters `Bad` with probability `p_good_to_bad`, from `Bad` it recovers
/// with probability `p_bad_to_good`; the flit is then corrupted by the
/// current state's [`ChannelErrorModel`]. State dwell times are therefore
/// geometric with means `1/p_good_to_bad` and `1/p_bad_to_good` flits, and
/// the long-run fraction of flits seeing the bad state is
/// `p_good_to_bad / (p_good_to_bad + p_bad_to_good)` — see
/// [`Self::stationary_ber`], whose value the property-test suite pins the
/// simulated long-run error rate against.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GilbertElliott {
    /// Error model of the good state.
    pub good: ChannelErrorModel,
    /// Error model of the bad state.
    pub bad: ChannelErrorModel,
    /// Per-flit probability of a good → bad transition.
    pub p_good_to_bad: f64,
    /// Per-flit probability of a bad → good recovery.
    pub p_bad_to_good: f64,
    state: GeState,
}

impl GilbertElliott {
    /// Creates the channel in its good state.
    pub fn new(
        good: ChannelErrorModel,
        bad: ChannelErrorModel,
        p_good_to_bad: f64,
        p_bad_to_good: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_good_to_bad) && (0.0..=1.0).contains(&p_bad_to_good),
            "transition probabilities must be in [0, 1]"
        );
        GilbertElliott {
            good,
            bad,
            p_good_to_bad,
            p_bad_to_good,
            state: GeState::Good,
        }
    }

    /// The current state.
    pub fn state(&self) -> GeState {
        self.state
    }

    /// Long-run fraction of flit traversals spent in the bad state.
    pub fn stationary_bad_fraction(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom == 0.0 {
            // No transitions ever: the channel stays in its initial (good)
            // state forever.
            return 0.0;
        }
        self.p_good_to_bad / denom
    }

    /// Long-run average error-start rate per transmitted bit: the
    /// state-occupancy-weighted mix of the two BERs. Burst extensions
    /// multiply the *flipped bit* count beyond this rate, exactly as they do
    /// for the stationary model.
    pub fn stationary_ber(&self) -> f64 {
        let pi_bad = self.stationary_bad_fraction();
        self.good.ber * (1.0 - pi_bad) + self.bad.ber * pi_bad
    }

    /// Returns the channel scaled by `factor` in both states (BER storms
    /// compose multiplicatively with bursty channels).
    pub fn scaled(&self, factor: f64) -> Self {
        GilbertElliott {
            good: self.good.scaled(factor),
            bad: self.bad.scaled(factor),
            ..*self
        }
    }
}

impl Channel for GilbertElliott {
    fn corrupt(&mut self, data: &mut [u8], _now_ns: f64, rng: &mut dyn RngCore) -> usize {
        // One state-machine step per traversal. A zero-probability
        // transition is deterministic and must not consume a draw (see the
        // trait's draw-order rules).
        let p = match self.state {
            GeState::Good => self.p_good_to_bad,
            GeState::Bad => self.p_bad_to_good,
        };
        if p > 0.0 && rng.random_bool(p) {
            self.state = match self.state {
                GeState::Good => GeState::Bad,
                GeState::Bad => GeState::Good,
            };
        }
        match self.state {
            GeState::Good => self.good.apply(data, rng),
            GeState::Bad => self.bad.apply(data, rng),
        }
    }
}

/// One piece of a [`BerSchedule`].
#[derive(Clone, Copy, Debug, PartialEq)]
struct Segment {
    /// Simulation time this segment takes effect.
    start_ns: f64,
    model: ChannelErrorModel,
}

/// A piecewise-stationary BER: a sequence of static operating points, each
/// taking effect at a configured simulation time. The segment active at
/// `now_ns` is the last one whose start is ≤ `now_ns`; before the first
/// configured change the `initial` model applies.
#[derive(Clone, Debug, PartialEq)]
pub struct BerSchedule {
    segments: Vec<Segment>,
}

impl BerSchedule {
    /// A schedule that starts at `initial` and never changes (until
    /// [`Self::then_at`] appends later segments).
    pub fn new(initial: ChannelErrorModel) -> Self {
        BerSchedule {
            segments: vec![Segment {
                start_ns: f64::NEG_INFINITY,
                model: initial,
            }],
        }
    }

    /// Appends a segment taking effect at `start_ns`. Starts must be
    /// appended in strictly ascending order.
    pub fn then_at(mut self, start_ns: f64, model: ChannelErrorModel) -> Self {
        let last = self.segments.last().expect("schedule is never empty");
        assert!(
            start_ns > last.start_ns,
            "schedule segments must start in ascending order"
        );
        self.segments.push(Segment { start_ns, model });
        self
    }

    /// The model active at `now_ns`.
    pub fn model_at(&self, now_ns: f64) -> &ChannelErrorModel {
        let idx = self
            .segments
            .iter()
            .rposition(|s| s.start_ns <= now_ns)
            .expect("first segment starts at -inf");
        &self.segments[idx].model
    }

    /// Returns the schedule with every segment start multiplied by `scale`
    /// — how slot-denominated scenario schedules convert to simulation
    /// nanoseconds (`scale` = the flit time) when instantiated.
    pub fn with_time_scale(&self, scale: f64) -> Self {
        assert!(scale > 0.0, "time scale must be positive");
        BerSchedule {
            segments: self
                .segments
                .iter()
                .map(|s| Segment {
                    start_ns: s.start_ns * scale,
                    model: s.model,
                })
                .collect(),
        }
    }

    /// Returns the schedule with every segment's BER scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        BerSchedule {
            segments: self
                .segments
                .iter()
                .map(|s| Segment {
                    start_ns: s.start_ns,
                    model: s.model.scaled(factor),
                })
                .collect(),
        }
    }
}

impl Channel for BerSchedule {
    fn corrupt(&mut self, data: &mut [u8], now_ns: f64, rng: &mut dyn RngCore) -> usize {
        let model = *self.model_at(now_ns);
        model.apply(data, rng)
    }
}

/// A flapping link: deterministically alternates between an *up* channel and
/// a *down* window at the start of every period. The default down model
/// garbles roughly a quarter of all bits, far beyond the interleaved FEC's
/// correction power, so every flit crossing a down window is dropped at the
/// next switch — the discrete-event analogue of a link that lost lock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlapChannel {
    /// Channel while the link is up.
    pub up: ChannelErrorModel,
    /// Channel while the link is down.
    pub down: ChannelErrorModel,
    /// Flap period in simulation nanoseconds.
    pub period_ns: f64,
    /// Fraction of each period (from the period's start) spent down.
    pub down_fraction: f64,
    /// Phase offset: the first period starts at this simulation time.
    pub phase_ns: f64,
}

impl FlapChannel {
    /// A loss-flap over `up`: down windows garble everything.
    pub fn loss(up: ChannelErrorModel, period_ns: f64, down_fraction: f64) -> Self {
        assert!(period_ns > 0.0, "flap period must be positive");
        assert!(
            (0.0..=1.0).contains(&down_fraction),
            "down fraction must be in [0, 1]"
        );
        FlapChannel {
            up,
            down: ChannelErrorModel::random(0.25),
            period_ns,
            down_fraction,
            phase_ns: 0.0,
        }
    }

    /// `true` if the link is down at `now_ns`.
    pub fn is_down(&self, now_ns: f64) -> bool {
        let t = (now_ns - self.phase_ns).rem_euclid(self.period_ns);
        t < self.down_fraction * self.period_ns
    }

    /// Returns the flap with the *up* channel scaled by `factor` (storms do
    /// not make a down link any more down).
    pub fn scaled(&self, factor: f64) -> Self {
        FlapChannel {
            up: self.up.scaled(factor),
            ..*self
        }
    }
}

impl Channel for FlapChannel {
    fn corrupt(&mut self, data: &mut [u8], now_ns: f64, rng: &mut dyn RngCore) -> usize {
        let model = if self.is_down(now_ns) {
            self.down
        } else {
            self.up
        };
        model.apply(data, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gilbert_elliott_stationary_helpers() {
        let ge = GilbertElliott::new(
            ChannelErrorModel::random(1e-6),
            ChannelErrorModel::random(1e-3),
            0.01,
            0.09,
        );
        assert!((ge.stationary_bad_fraction() - 0.1).abs() < 1e-12);
        let expected = 1e-6 * 0.9 + 1e-3 * 0.1;
        assert!((ge.stationary_ber() - expected).abs() < 1e-15);
        // Pinned channel: no transitions, stays good.
        let pinned = GilbertElliott::new(
            ChannelErrorModel::ideal(),
            ChannelErrorModel::random(0.5),
            0.0,
            0.0,
        );
        assert_eq!(pinned.stationary_ber(), 0.0);
    }

    #[test]
    fn gilbert_elliott_visits_both_states() {
        let mut ge = GilbertElliott::new(
            ChannelErrorModel::ideal(),
            ChannelErrorModel::random(0.25),
            0.2,
            0.2,
        );
        let mut rng = StdRng::seed_from_u64(7);
        let (mut clean, mut dirty) = (0, 0);
        for _ in 0..400 {
            let mut data = [0u8; 64];
            if ge.corrupt(&mut data, 0.0, &mut rng) == 0 {
                clean += 1;
            } else {
                dirty += 1;
            }
        }
        assert!(clean > 50, "good state must appear: {clean}");
        assert!(dirty > 50, "bad state must appear: {dirty}");
    }

    #[test]
    fn schedule_picks_the_active_segment() {
        let sched = BerSchedule::new(ChannelErrorModel::ideal())
            .then_at(100.0, ChannelErrorModel::random(1e-3))
            .then_at(200.0, ChannelErrorModel::random(1e-5));
        assert_eq!(sched.model_at(0.0).ber, 0.0);
        assert_eq!(sched.model_at(99.9).ber, 0.0);
        assert_eq!(sched.model_at(100.0).ber, 1e-3);
        assert_eq!(sched.model_at(150.0).ber, 1e-3);
        assert_eq!(sched.model_at(1e9).ber, 1e-5);
    }

    #[test]
    #[should_panic]
    fn schedule_rejects_out_of_order_segments() {
        let _ = BerSchedule::new(ChannelErrorModel::ideal())
            .then_at(100.0, ChannelErrorModel::random(1e-3))
            .then_at(50.0, ChannelErrorModel::random(1e-4));
    }

    #[test]
    fn flap_windows_are_deterministic() {
        let flap = FlapChannel::loss(ChannelErrorModel::ideal(), 100.0, 0.25);
        assert!(flap.is_down(0.0));
        assert!(flap.is_down(24.9));
        assert!(!flap.is_down(25.0));
        assert!(!flap.is_down(99.9));
        assert!(flap.is_down(100.0));
        let mut rng = StdRng::seed_from_u64(3);
        let mut ch = flap;
        let mut data = [0u8; 64];
        assert!(ch.corrupt(&mut data, 10.0, &mut rng) > 50, "down garbles");
        let mut data = [0u8; 64];
        assert_eq!(ch.corrupt(&mut data, 60.0, &mut rng), 0, "up is ideal");
    }
}
