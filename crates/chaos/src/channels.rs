//! Time-varying channel models.
//!
//! The paper's channel model (PAPER.md §2.2) assumes independent bit errors
//! at one stationary BER. Real fabrics break that assumption in three
//! characteristic ways, each modelled here as an implementation of the
//! [`Channel`] trait from `rxl-link`:
//!
//! * [`GilbertElliott`] — a two-state bursty channel: long stretches of a
//!   *good* BER interrupted by *bad*-state storms with a much higher BER,
//!   the classic model for correlated link-quality excursions;
//! * [`BerSchedule`] — a piecewise-stationary BER: the channel switches
//!   between static operating points at configured simulation times
//!   (degradation ramps, maintenance windows);
//! * [`FlapChannel`] — a link that periodically goes *down* (every flit
//!   garbled beyond FEC correction, i.e. lost) and comes back up.
//!
//! All three follow the RNG-draw-order rules documented on [`Channel`]:
//! randomness only from the passed RNG, draw counts a deterministic function
//! of channel state and inputs, and **no draws for deterministic decisions**
//! — a Gilbert–Elliott channel pinned to its good state by zero transition
//! probabilities, or an all-ideal schedule, consumes exactly the draws of
//! the static model it degenerates to (none, when ideal), which keeps it
//! bit-identical to [`ChannelErrorModel::ideal`].
//!
//! All three also implement the event-jump half of the trait
//! ([`Channel::next_error_slot`] / [`Channel::corrupt_at_event`]):
//! Gilbert–Elliott samples geometric state-dwell lengths and walks dwell
//! segments until one contains an error event, while the piecewise channels
//! (schedule, flap) sample a geometric jump under the currently active
//! model and expire the prediction at their next time boundary — discarding
//! an unexpired jump at a boundary is distribution-exact because the
//! per-traversal error process is memoryless.

use rand::{Rng, RngCore};
use rxl_link::{geometric_failures, Channel, ChannelErrorModel, ErrorPrediction};

/// Which state a [`GilbertElliott`] channel is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GeState {
    /// The low-BER operating state.
    Good,
    /// The high-BER storm state.
    Bad,
}

/// A two-state Gilbert–Elliott bursty channel.
///
/// Before each flit traversal the state machine takes one step: from `Good`
/// it enters `Bad` with probability `p_good_to_bad`, from `Bad` it recovers
/// with probability `p_bad_to_good`; the flit is then corrupted by the
/// current state's [`ChannelErrorModel`]. State dwell times are therefore
/// geometric with means `1/p_good_to_bad` and `1/p_bad_to_good` flits, and
/// the long-run fraction of flits seeing the bad state is
/// `p_good_to_bad / (p_good_to_bad + p_bad_to_good)` — see
/// [`Self::stationary_ber`], whose value the property-test suite pins the
/// simulated long-run error rate against.
///
/// Under the event-jump path ([`Channel::next_error_slot`]) the same chain
/// is simulated dwell-by-dwell: state residence lengths are sampled
/// geometrically and only dwells that contain an error event cost any
/// per-traversal work, so a channel pinned to an ideal good state is
/// entirely draw-free.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GilbertElliott {
    /// Error model of the good state.
    pub good: ChannelErrorModel,
    /// Error model of the bad state.
    pub bad: ChannelErrorModel,
    /// Per-flit probability of a good → bad transition.
    pub p_good_to_bad: f64,
    /// Per-flit probability of a bad → good recovery.
    pub p_bad_to_good: f64,
    state: GeState,
    /// Event-jump dwell bookkeeping: the traversal index at which the state
    /// machine next flips, or `0` when the current dwell has not been
    /// sampled yet (traversal indices handed to [`Channel::next_error_slot`]
    /// by [`rxl_link::EventCursor`] start at 1, so 0 is a free sentinel).
    /// Only the skip-ahead path uses this; the legacy per-traversal
    /// [`Channel::corrupt`] path clears it so the two entry points can't
    /// disagree about the dwell.
    flip_at: u64,
}

impl GilbertElliott {
    /// Creates the channel in its good state.
    pub fn new(
        good: ChannelErrorModel,
        bad: ChannelErrorModel,
        p_good_to_bad: f64,
        p_bad_to_good: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_good_to_bad) && (0.0..=1.0).contains(&p_bad_to_good),
            "transition probabilities must be in [0, 1]"
        );
        GilbertElliott {
            good,
            bad,
            p_good_to_bad,
            p_bad_to_good,
            state: GeState::Good,
            flip_at: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> GeState {
        self.state
    }

    /// Long-run fraction of flit traversals spent in the bad state.
    pub fn stationary_bad_fraction(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom == 0.0 {
            // No transitions ever: the channel stays in its initial (good)
            // state forever.
            return 0.0;
        }
        self.p_good_to_bad / denom
    }

    /// Long-run average error-start rate per transmitted bit: the
    /// state-occupancy-weighted mix of the two BERs. Burst extensions
    /// multiply the *flipped bit* count beyond this rate, exactly as they do
    /// for the stationary model.
    pub fn stationary_ber(&self) -> f64 {
        let pi_bad = self.stationary_bad_fraction();
        self.good.ber * (1.0 - pi_bad) + self.bad.ber * pi_bad
    }

    /// Returns the channel scaled by `factor` in both states (BER storms
    /// compose multiplicatively with bursty channels).
    pub fn scaled(&self, factor: f64) -> Self {
        GilbertElliott {
            good: self.good.scaled(factor),
            bad: self.bad.scaled(factor),
            ..*self
        }
    }
}

impl GilbertElliott {
    /// The probability of leaving the current state on one traversal.
    fn p_leave(&self) -> f64 {
        match self.state {
            GeState::Good => self.p_good_to_bad,
            GeState::Bad => self.p_bad_to_good,
        }
    }

    fn flip_state(&mut self) {
        self.state = match self.state {
            GeState::Good => GeState::Bad,
            GeState::Bad => GeState::Good,
        };
    }
}

impl Channel for GilbertElliott {
    fn corrupt(&mut self, data: &mut [u8], _now_ns: f64, rng: &mut dyn RngCore) -> usize {
        // Legacy per-traversal stepping invalidates any dwell the skip-ahead
        // path may have sampled; the two entry points must never disagree
        // about when the state flips.
        self.flip_at = 0;
        // One state-machine step per traversal. A zero-probability
        // transition is deterministic and must not consume a draw (see the
        // trait's draw-order rules).
        let p = self.p_leave();
        if p > 0.0 && rng.random_bool(p) {
            self.flip_state();
        }
        match self.state {
            GeState::Good => self.good.apply(data, rng),
            GeState::Bad => self.bad.apply(data, rng),
        }
    }

    fn next_error_slot(
        &mut self,
        now_slot: u64,
        _now_ns: f64,
        bits: u64,
        rng: &mut dyn RngCore,
    ) -> ErrorPrediction {
        let p_good = self.good.unit_error_probability(bits as usize);
        let p_bad = self.bad.unit_error_probability(bits as usize);
        if p_good <= 0.0 && p_bad <= 0.0 {
            // Both states are ideal: the state trajectory is unobservable,
            // so the channel degenerates to ideal with zero draws — exactly
            // what the legacy path does for a pinned all-ideal channel.
            return ErrorPrediction::never();
        }
        // Walk dwell segments from `now_slot` until one contains an error
        // event. Within a dwell the error process is Bernoulli(p_flit) per
        // traversal, so the offset of the first error is Geom₀(p_flit); a
        // candidate that lands at or past the flip is discarded, which is
        // distribution-exact by memorylessness.
        let mut cur = now_slot;
        loop {
            if self.flip_at == 0 {
                // Resuming mid-dwell: memorylessness makes "flip at
                // cur + Geom₀(p_leave)" exact regardless of how long the
                // state has already been occupied. Note the legacy stepper
                // flips *before* corrupting, so a flip at `cur` itself is
                // possible here, unlike after a walked flip below.
                let p = self.p_leave();
                self.flip_at = if p <= 0.0 {
                    u64::MAX
                } else {
                    cur.saturating_add(geometric_failures(p, rng))
                };
            }
            if cur < self.flip_at {
                let p_flit = match self.state {
                    GeState::Good => p_good,
                    GeState::Bad => p_bad,
                };
                if p_flit > 0.0 {
                    let candidate = cur.saturating_add(geometric_failures(p_flit, rng));
                    if candidate < self.flip_at {
                        return ErrorPrediction::at(candidate);
                    }
                }
            }
            if self.flip_at == u64::MAX {
                return ErrorPrediction::never();
            }
            cur = self.flip_at;
            self.flip_state();
            // The new state first applies to traversal `cur` (the legacy
            // stepper corrupts with the post-flip state), so its dwell of
            // 1 + Geom₀(p_leave) traversals ends at cur + that length.
            let p = self.p_leave();
            self.flip_at = if p <= 0.0 {
                u64::MAX
            } else {
                cur.saturating_add(1)
                    .saturating_add(geometric_failures(p, rng))
            };
        }
    }

    fn corrupt_at_event(&mut self, data: &mut [u8], _now_ns: f64, rng: &mut dyn RngCore) -> usize {
        let model = match self.state {
            GeState::Good => self.good,
            GeState::Bad => self.bad,
        };
        model.apply_conditioned(data, rng)
    }
}

/// One piece of a [`BerSchedule`].
#[derive(Clone, Copy, Debug, PartialEq)]
struct Segment {
    /// Simulation time this segment takes effect.
    start_ns: f64,
    model: ChannelErrorModel,
}

/// A piecewise-stationary BER: a sequence of static operating points, each
/// taking effect at a configured simulation time. The segment active at
/// `now_ns` is the last one whose start is ≤ `now_ns`; before the first
/// configured change the `initial` model applies.
#[derive(Clone, Debug, PartialEq)]
pub struct BerSchedule {
    segments: Vec<Segment>,
}

impl BerSchedule {
    /// A schedule that starts at `initial` and never changes (until
    /// [`Self::then_at`] appends later segments).
    pub fn new(initial: ChannelErrorModel) -> Self {
        BerSchedule {
            segments: vec![Segment {
                start_ns: f64::NEG_INFINITY,
                model: initial,
            }],
        }
    }

    /// Appends a segment taking effect at `start_ns`. Starts must be
    /// appended in strictly ascending order.
    pub fn then_at(mut self, start_ns: f64, model: ChannelErrorModel) -> Self {
        let last = self.segments.last().expect("schedule is never empty");
        assert!(
            start_ns > last.start_ns,
            "schedule segments must start in ascending order"
        );
        self.segments.push(Segment { start_ns, model });
        self
    }

    /// The model active at `now_ns`.
    pub fn model_at(&self, now_ns: f64) -> &ChannelErrorModel {
        let idx = self
            .segments
            .iter()
            .rposition(|s| s.start_ns <= now_ns)
            .expect("first segment starts at -inf");
        &self.segments[idx].model
    }

    /// Returns the schedule with every segment start multiplied by `scale`
    /// — how slot-denominated scenario schedules convert to simulation
    /// nanoseconds (`scale` = the flit time) when instantiated.
    pub fn with_time_scale(&self, scale: f64) -> Self {
        assert!(scale > 0.0, "time scale must be positive");
        BerSchedule {
            segments: self
                .segments
                .iter()
                .map(|s| Segment {
                    start_ns: s.start_ns * scale,
                    model: s.model,
                })
                .collect(),
        }
    }

    /// Returns the schedule with every segment's BER scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        BerSchedule {
            segments: self
                .segments
                .iter()
                .map(|s| Segment {
                    start_ns: s.start_ns,
                    model: s.model.scaled(factor),
                })
                .collect(),
        }
    }
}

impl Channel for BerSchedule {
    fn corrupt(&mut self, data: &mut [u8], now_ns: f64, rng: &mut dyn RngCore) -> usize {
        let model = *self.model_at(now_ns);
        model.apply(data, rng)
    }

    fn next_error_slot(
        &mut self,
        now_slot: u64,
        now_ns: f64,
        bits: u64,
        rng: &mut dyn RngCore,
    ) -> ErrorPrediction {
        let idx = self
            .segments
            .iter()
            .rposition(|s| s.start_ns <= now_ns)
            .expect("first segment starts at -inf");
        // The prediction is only valid while this segment is active; the
        // cursor resamples at the first traversal past the boundary, which
        // is exact because discarding an unfired memoryless jump is free.
        let expires_ns = self
            .segments
            .get(idx + 1)
            .map_or(f64::INFINITY, |s| s.start_ns);
        let p_flit = self.segments[idx]
            .model
            .unit_error_probability(bits as usize);
        if p_flit <= 0.0 {
            return ErrorPrediction::until(u64::MAX, expires_ns);
        }
        ErrorPrediction::until(
            now_slot.saturating_add(geometric_failures(p_flit, rng)),
            expires_ns,
        )
    }

    fn corrupt_at_event(&mut self, data: &mut [u8], now_ns: f64, rng: &mut dyn RngCore) -> usize {
        let model = *self.model_at(now_ns);
        model.apply_conditioned(data, rng)
    }
}

/// A flapping link: deterministically alternates between an *up* channel and
/// a *down* window at the start of every period. The default down model
/// garbles roughly a quarter of all bits, far beyond the interleaved FEC's
/// correction power, so every flit crossing a down window is dropped at the
/// next switch — the discrete-event analogue of a link that lost lock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlapChannel {
    /// Channel while the link is up.
    pub up: ChannelErrorModel,
    /// Channel while the link is down.
    pub down: ChannelErrorModel,
    /// Flap period in simulation nanoseconds.
    pub period_ns: f64,
    /// Fraction of each period (from the period's start) spent down.
    pub down_fraction: f64,
    /// Phase offset: the first period starts at this simulation time.
    pub phase_ns: f64,
}

impl FlapChannel {
    /// A loss-flap over `up`: down windows garble everything.
    pub fn loss(up: ChannelErrorModel, period_ns: f64, down_fraction: f64) -> Self {
        assert!(period_ns > 0.0, "flap period must be positive");
        assert!(
            (0.0..=1.0).contains(&down_fraction),
            "down fraction must be in [0, 1]"
        );
        FlapChannel {
            up,
            down: ChannelErrorModel::random(0.25),
            period_ns,
            down_fraction,
            phase_ns: 0.0,
        }
    }

    /// `true` if the link is down at `now_ns`.
    pub fn is_down(&self, now_ns: f64) -> bool {
        let t = (now_ns - self.phase_ns).rem_euclid(self.period_ns);
        t < self.down_fraction * self.period_ns
    }

    /// Returns the flap with the *up* channel scaled by `factor` (storms do
    /// not make a down link any more down).
    pub fn scaled(&self, factor: f64) -> Self {
        FlapChannel {
            up: self.up.scaled(factor),
            ..*self
        }
    }
}

impl Channel for FlapChannel {
    fn corrupt(&mut self, data: &mut [u8], now_ns: f64, rng: &mut dyn RngCore) -> usize {
        let model = if self.is_down(now_ns) {
            self.down
        } else {
            self.up
        };
        model.apply(data, rng)
    }

    fn next_error_slot(
        &mut self,
        now_slot: u64,
        now_ns: f64,
        bits: u64,
        rng: &mut dyn RngCore,
    ) -> ErrorPrediction {
        let t = (now_ns - self.phase_ns).rem_euclid(self.period_ns);
        let down_end = self.down_fraction * self.period_ns;
        // Cap the prediction at the next up/down edge; `rem_euclid` keeps
        // `t` in [0, period), so both remaining-window spans are positive.
        let (model, expires_ns) = if t < down_end {
            (self.down, now_ns + (down_end - t))
        } else {
            (self.up, now_ns + (self.period_ns - t))
        };
        let p_flit = model.unit_error_probability(bits as usize);
        if p_flit <= 0.0 {
            return ErrorPrediction::until(u64::MAX, expires_ns);
        }
        ErrorPrediction::until(
            now_slot.saturating_add(geometric_failures(p_flit, rng)),
            expires_ns,
        )
    }

    fn corrupt_at_event(&mut self, data: &mut [u8], now_ns: f64, rng: &mut dyn RngCore) -> usize {
        let model = if self.is_down(now_ns) {
            self.down
        } else {
            self.up
        };
        model.apply_conditioned(data, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gilbert_elliott_stationary_helpers() {
        let ge = GilbertElliott::new(
            ChannelErrorModel::random(1e-6),
            ChannelErrorModel::random(1e-3),
            0.01,
            0.09,
        );
        assert!((ge.stationary_bad_fraction() - 0.1).abs() < 1e-12);
        let expected = 1e-6 * 0.9 + 1e-3 * 0.1;
        assert!((ge.stationary_ber() - expected).abs() < 1e-15);
        // Pinned channel: no transitions, stays good.
        let pinned = GilbertElliott::new(
            ChannelErrorModel::ideal(),
            ChannelErrorModel::random(0.5),
            0.0,
            0.0,
        );
        assert_eq!(pinned.stationary_ber(), 0.0);
    }

    #[test]
    fn gilbert_elliott_visits_both_states() {
        let mut ge = GilbertElliott::new(
            ChannelErrorModel::ideal(),
            ChannelErrorModel::random(0.25),
            0.2,
            0.2,
        );
        let mut rng = StdRng::seed_from_u64(7);
        let (mut clean, mut dirty) = (0, 0);
        for _ in 0..400 {
            let mut data = [0u8; 64];
            if ge.corrupt(&mut data, 0.0, &mut rng) == 0 {
                clean += 1;
            } else {
                dirty += 1;
            }
        }
        assert!(clean > 50, "good state must appear: {clean}");
        assert!(dirty > 50, "bad state must appear: {dirty}");
    }

    #[test]
    fn schedule_picks_the_active_segment() {
        let sched = BerSchedule::new(ChannelErrorModel::ideal())
            .then_at(100.0, ChannelErrorModel::random(1e-3))
            .then_at(200.0, ChannelErrorModel::random(1e-5));
        assert_eq!(sched.model_at(0.0).ber, 0.0);
        assert_eq!(sched.model_at(99.9).ber, 0.0);
        assert_eq!(sched.model_at(100.0).ber, 1e-3);
        assert_eq!(sched.model_at(150.0).ber, 1e-3);
        assert_eq!(sched.model_at(1e9).ber, 1e-5);
    }

    #[test]
    #[should_panic]
    fn schedule_rejects_out_of_order_segments() {
        let _ = BerSchedule::new(ChannelErrorModel::ideal())
            .then_at(100.0, ChannelErrorModel::random(1e-3))
            .then_at(50.0, ChannelErrorModel::random(1e-4));
    }

    #[test]
    fn pinned_good_gilbert_elliott_is_draw_free_under_skip_ahead() {
        let mut ge = GilbertElliott::new(
            ChannelErrorModel::ideal(),
            ChannelErrorModel::random(0.5),
            0.0,
            0.0,
        );
        let mut cursor = rxl_link::EventCursor::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mut twin = StdRng::seed_from_u64(11);
        let mut data = [0u8; 64];
        for slot in 0..10_000u64 {
            assert_eq!(cursor.advance(&mut ge, &mut data, slot as f64, &mut rng), 0);
        }
        // The pinned channel never observes its bad state, so it must be as
        // draw-free as an ideal static channel: the twin stream stayed in
        // lockstep.
        assert_eq!(rng.random::<u64>(), twin.random::<u64>());
        assert_eq!(ge.state(), GeState::Good);
    }

    #[test]
    fn gilbert_elliott_skip_ahead_matches_stationary_statistics() {
        // Good state ideal, bad state noisy: every error event is a bad-state
        // traversal, so the event rate pins both the dwell statistics and the
        // per-traversal error probability at once.
        let ge_template = GilbertElliott::new(
            ChannelErrorModel::random(0.0),
            ChannelErrorModel::random(1e-3),
            0.01,
            0.09,
        );
        let trials = 200_000u64;
        let bits = 64 * 8;
        let p_bad = ge_template.bad.unit_error_probability(bits);
        let expected = trials as f64 * ge_template.stationary_bad_fraction() * p_bad;

        let mut ge = ge_template;
        let mut cursor = rxl_link::EventCursor::new();
        let mut rng = StdRng::seed_from_u64(0xD1CE);
        let mut events = 0u64;
        for slot in 0..trials {
            let mut data = [0u8; 64];
            if cursor.advance(&mut ge, &mut data, slot as f64, &mut rng) > 0 {
                events += 1;
            }
        }
        // Dwell correlation inflates the variance well beyond binomial, so
        // the envelope is generous; it still catches occupancy or rate being
        // off by a state's worth.
        let lo = expected * 0.85;
        let hi = expected * 1.15;
        assert!(
            (events as f64) > lo && (events as f64) < hi,
            "GE skip-ahead event count {events} outside [{lo:.0}, {hi:.0}] (expected {expected:.0})"
        );
    }

    #[test]
    fn schedule_skip_ahead_respects_boundaries() {
        let mut sched = BerSchedule::new(ChannelErrorModel::ideal())
            .then_at(100.0, ChannelErrorModel::random(0.25))
            .then_at(200.0, ChannelErrorModel::ideal());
        let mut cursor = rxl_link::EventCursor::new();
        let mut rng = StdRng::seed_from_u64(5);
        let mut noisy_traversals = 0;
        for slot in 0..1_000u64 {
            let now_ns = slot as f64;
            let mut data = [0u8; 64];
            let flips = cursor.advance(&mut sched, &mut data, now_ns, &mut rng);
            if (100.0..200.0).contains(&now_ns) {
                if flips > 0 {
                    noisy_traversals += 1;
                }
            } else {
                assert_eq!(flips, 0, "ideal segment corrupted at {now_ns}");
            }
        }
        // At BER 0.25 the per-flit error probability is ~1, so essentially
        // every traversal inside the noisy window fires.
        assert!(
            noisy_traversals > 95,
            "noisy window barely fired: {noisy_traversals}/100"
        );
    }

    #[test]
    fn flap_skip_ahead_matches_down_windows() {
        let flap = FlapChannel::loss(ChannelErrorModel::ideal(), 100.0, 0.25);
        let mut ch = flap;
        let mut cursor = rxl_link::EventCursor::new();
        let mut rng = StdRng::seed_from_u64(9);
        for slot in 0..500u64 {
            let now_ns = slot as f64;
            let mut data = [0u8; 64];
            let flips = cursor.advance(&mut ch, &mut data, now_ns, &mut rng);
            if flap.is_down(now_ns) {
                assert!(flips > 50, "down window must garble at {now_ns}: {flips}");
            } else {
                assert_eq!(flips, 0, "up window corrupted at {now_ns}");
            }
        }
    }

    #[test]
    fn flap_windows_are_deterministic() {
        let flap = FlapChannel::loss(ChannelErrorModel::ideal(), 100.0, 0.25);
        assert!(flap.is_down(0.0));
        assert!(flap.is_down(24.9));
        assert!(!flap.is_down(25.0));
        assert!(!flap.is_down(99.9));
        assert!(flap.is_down(100.0));
        let mut rng = StdRng::seed_from_u64(3);
        let mut ch = flap;
        let mut data = [0u8; 64];
        assert!(ch.corrupt(&mut data, 10.0, &mut rng) > 50, "down garbles");
        let mut data = [0u8; 64];
        assert_eq!(ch.corrupt(&mut data, 60.0, &mut rng), 0, "up is ideal");
    }
}
