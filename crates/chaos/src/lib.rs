//! # rxl-chaos — fault injection & scenario engine
//!
//! The paper evaluates RXL's reliability under a stationary, fabric-wide
//! BER. Real CXL fabrics fail in bursts: individual cables degrade, BER
//! storms hit single links, switches drain for maintenance or die
//! mid-traffic. This crate turns the `rxl-fabric` simulator into a scenario
//! exploration engine for exactly those regimes — and stress-tests whether
//! RXL's retry/replay machinery still holds where the paper's
//! independent-bit-error assumption breaks down.
//!
//! * [`channels`] — time-varying per-link channel models behind the
//!   `rxl_link::Channel` trait: a Gilbert–Elliott two-state bursty channel,
//!   a piecewise BER schedule, and a deterministic link flap;
//! * [`scenario`] — deterministic, seed-reproducible timelines of epochal
//!   events (`BerStorm`, `LinkDegrade`, `LinkFlap`, `SwitchDrain`,
//!   `SwitchFail`) applied to named links and switches of a
//!   `FabricTopology`;
//! * [`runner`] — executes a scenario against one `FabricSim` trial,
//!   pausing at epoch boundaries to mutate channels and rout­ing, and
//!   reporting per-epoch failure-count deltas, availability and
//!   time-to-first-`Fail_order`;
//! * [`montecarlo`] — sharded scenario trials with the workspace's
//!   SplitMix64 per-trial seeding: aggregates are bit-identical for any
//!   worker-thread count.
//!
//! # Example: a BER storm on one leaf–spine uplink
//!
//! ```
//! use rxl_chaos::{ChaosMonteCarlo, Scenario};
//! use rxl_fabric::{FabricConfig, FabricTopology, FabricWorkload};
//! use rxl_link::{ChannelErrorModel, ProtocolVariant};
//!
//! let topology = FabricTopology::leaf_spine(2, 1, 2);
//! let uplink = topology.trunk_between(0, 2).expect("leaf 0 ⇄ spine 0");
//! let scenario = Scenario::named("uplink storm")
//!     .ber_storm(100, 200, vec![uplink], 50.0);
//! let config = FabricConfig::new(ProtocolVariant::Rxl)
//!     .with_channel(ChannelErrorModel::random(1e-5));
//! let workload = FabricWorkload::symmetric(topology.session_count(), 400, 8, 1);
//! let report = ChaosMonteCarlo::new(topology, config, scenario, 2).run(&workload);
//! // RXL retries every storm-induced drop: the audit stays clean.
//! assert!(report.failures.is_clean());
//! ```

pub mod channels;
pub mod montecarlo;
pub mod runner;
pub mod scenario;

pub use channels::{BerSchedule, FlapChannel, GeState, GilbertElliott};
pub use montecarlo::{ChaosMonteCarlo, ChaosMonteCarloReport, EpochAggregate};
pub use runner::{run_scenario, run_scenario_probed, ChaosReport, EpochReport};
pub use scenario::{ChannelSpec, ChaosEvent, Scenario, TimedEvent};
