//! Property tests for the time-varying channels.
//!
//! Two contracts matter for the chaos subsystem's credibility:
//!
//! 1. **Statistical soundness** — the Gilbert–Elliott channel's long-run
//!    average error rate must converge to its closed-form stationary BER
//!    (`π_bad · ber_bad + (1 − π_bad) · ber_good`), otherwise every scenario
//!    built on it would run at an unintended operating point.
//! 2. **Bit-identity in the degenerate case** — a channel configured to
//!    never leave its good/ideal state must be *bit-identical* to
//!    [`ChannelErrorModel::ideal`]: same bytes out **and** the same RNG
//!    stream afterwards. This is the RNG-draw-order rule of the `Channel`
//!    trait, and it is what lets the golden-digest regression guarantee that
//!    scenario-free simulation is unchanged by the chaos subsystem.

use proptest::prelude::*;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rxl_chaos::{BerSchedule, GilbertElliott};
use rxl_link::{Channel, ChannelErrorModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Long-run flipped-bit rate of a burst-free Gilbert–Elliott channel
    /// converges to the stationary BER (state dwell times are kept short
    /// relative to the simulated traffic so occupancy noise stays a few
    /// percent; the tolerance below is ≈4σ of that noise).
    #[test]
    fn gilbert_elliott_converges_to_its_stationary_ber(
        good_i in 0u32..=3,
        bad_i in 2u32..=20,
        p_gb_i in 5u32..=50,
        p_bg_i in 5u32..=50,
        seed in 0u64..1_000_000,
    ) {
        let good = ChannelErrorModel::random(good_i as f64 * 5e-5);
        let bad = ChannelErrorModel::random(bad_i as f64 * 1e-3);
        let p_gb = p_gb_i as f64 / 100.0;
        let p_bg = p_bg_i as f64 / 100.0;
        let mut ge = GilbertElliott::new(good, bad, p_gb, p_bg);

        let mut rng = StdRng::seed_from_u64(seed);
        const FLITS: usize = 8_000;
        const BYTES: usize = 64;
        let mut flipped = 0usize;
        for _ in 0..FLITS {
            let mut data = [0u8; BYTES];
            flipped += ge.corrupt(&mut data, 0.0, &mut rng);
        }
        let total_bits = (FLITS * BYTES * 8) as f64;
        let measured = flipped as f64 / total_bits;
        let expected = ge.stationary_ber();
        let tolerance = (0.30 * expected).max(12.0 / total_bits);
        prop_assert!(
            (measured - expected).abs() < tolerance,
            "measured {measured:.3e}, stationary {expected:.3e} (±{tolerance:.3e}); \
             p_gb={p_gb}, p_bg={p_bg}"
        );
    }

    /// A Gilbert–Elliott channel pinned to an ideal good state (zero
    /// transition probabilities) is bit-identical to
    /// `ChannelErrorModel::ideal()`: the buffer is untouched and not a
    /// single RNG draw is consumed.
    #[test]
    fn pinned_good_state_is_bit_identical_to_ideal(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        seed in 0u64..1_000_000,
        flits in 1usize..20,
    ) {
        let mut pinned = GilbertElliott::new(
            ChannelErrorModel::ideal(),
            ChannelErrorModel::random(0.5),
            0.0,
            0.0,
        );
        let mut ideal = ChannelErrorModel::ideal();
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        for i in 0..flits {
            let mut a = data.clone();
            let mut b = data.clone();
            let now = i as f64 * 2.0;
            prop_assert_eq!(pinned.corrupt(&mut a, now, &mut rng_a), 0);
            prop_assert_eq!(ideal.corrupt(&mut b, now, &mut rng_b), 0);
            prop_assert_eq!(&a, &data);
            prop_assert_eq!(&b, &data);
        }
        // Same RNG stream afterwards ⇒ zero draws were consumed by either.
        let first = StdRng::seed_from_u64(seed).next_u64();
        prop_assert_eq!(rng_a.next_u64(), first);
        prop_assert_eq!(rng_b.next_u64(), first);
    }

    /// An all-good (all-ideal) BER schedule is bit-identical to
    /// `ChannelErrorModel::ideal()` at every simulation time, across its
    /// segment boundaries.
    #[test]
    fn all_good_schedule_is_bit_identical_to_ideal(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        seed in 0u64..1_000_000,
        t_i in 0u64..4_000,
    ) {
        let mut schedule = BerSchedule::new(ChannelErrorModel::ideal())
            .then_at(1_000.0, ChannelErrorModel::ideal())
            .then_at(2_000.0, ChannelErrorModel::ideal());
        let mut rng = StdRng::seed_from_u64(seed);
        let now = t_i as f64;
        let mut buf = data.clone();
        prop_assert_eq!(schedule.corrupt(&mut buf, now, &mut rng), 0);
        prop_assert_eq!(&buf, &data);
        let mut fresh = StdRng::seed_from_u64(seed);
        prop_assert_eq!(rng.next_u64(), fresh.next_u64());
    }

    /// A single-segment schedule of a *noisy* static model is bit-identical
    /// to applying that model directly: same flips, same bytes, same RNG
    /// stream. (The schedule machinery adds observation points, never
    /// draws.)
    #[test]
    fn single_segment_schedule_matches_the_static_model_bitwise(
        data in proptest::collection::vec(any::<u8>(), 16..256),
        seed in 0u64..1_000_000,
    ) {
        let model = ChannelErrorModel::random(5e-3);
        let mut schedule = BerSchedule::new(model);
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let mut a = data.clone();
        let mut b = data;
        let flips_a = schedule.corrupt(&mut a, 123.0, &mut rng_a);
        let flips_b = model.apply(&mut b, &mut rng_b);
        prop_assert_eq!(flips_a, flips_b);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }
}
