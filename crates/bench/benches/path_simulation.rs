//! Criterion benchmarks for the flit-level path simulator: how fast the
//! Monte-Carlo engine moves traffic for each protocol variant and topology.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use rxl_link::{ChannelErrorModel, ProtocolVariant};
use rxl_sim::{request_stream, response_stream, PathSim, SimConfig, TrafficPattern};

fn bench_path(c: &mut Criterion) {
    let down = request_stream(300, TrafficPattern::Reads { cqids: 8 }, 1);
    let up = response_stream(150, 8, 2);

    let mut group = c.benchmark_group("path_sim");
    group.throughput(Throughput::Elements((down.len() + up.len()) as u64));
    group.sample_size(20);
    for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
        for levels in [0u32, 1, 3] {
            let id = BenchmarkId::new(format!("{variant:?}"), format!("{levels}_levels"));
            group.bench_with_input(id, &levels, |b, &levels| {
                b.iter(|| {
                    let config = SimConfig::new(variant, levels)
                        .with_channel(ChannelErrorModel::random(1e-5));
                    black_box(PathSim::new(config).run(&down, &up))
                })
            });
        }
    }
    group.finish();
}

fn bench_noisy_path(c: &mut Criterion) {
    let down = request_stream(300, TrafficPattern::DataStream { cqids: 8 }, 3);
    let up = response_stream(100, 8, 4);

    let mut group = c.benchmark_group("path_sim_noisy");
    group.sample_size(15);
    for ber in [1e-4f64, 5e-4] {
        let id = BenchmarkId::new("rxl_1_level", format!("ber_{ber:.0e}"));
        group.bench_with_input(id, &ber, |b, &ber| {
            b.iter(|| {
                let config = SimConfig::new(ProtocolVariant::Rxl, 1)
                    .with_channel(ChannelErrorModel::random(ber));
                black_box(PathSim::new(config).run(&down, &up))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_path, bench_noisy_path);
criterion_main!(benches);
