//! Microbenchmarks for the flit-slot hot path, one layer at a time.
//!
//! These make the hot-path claims of the performance overhaul reproducible
//! outside the fabric engine: the three CRC engine strategies side by side
//! (bitwise reference, byte-at-a-time table, slice-by-8), both flit formats'
//! encode/decode, and the Reed–Solomon layers (the RS(68,64)-shaped
//! shortened code and the interleaved CXL flit FEC) in their streaming
//! allocation-free forms. The `channel_sampling` group compares per-flit
//! Bernoulli draws against the geometric skip-ahead cursor, and
//! `gf256_const_mul` compares the log/exp field multiply against the
//! nibble-split half-tables used by the FEC inner loops.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rxl_crc::{catalog::CRC64_XZ, BitwiseCrc, TableCrc, FLIT_CRC64_SLICE};
use rxl_fec::{InterleavedFec, RsCode, ShortenedRs};
use rxl_flit::{CxlFlitCodec, Flit256, Flit68, FlitHeader, RxlFlitCodec};
use rxl_gf256::{ConstMul, Gf256};
use rxl_link::{ChannelErrorModel, EventCursor};
use rxl_load::LatencyHistogram;

fn payload240() -> Vec<u8> {
    (0..240u32).map(|i| (i * 31 + 7) as u8).collect()
}

fn bench_crc_engines(c: &mut Criterion) {
    let data = payload240();
    let bitwise = BitwiseCrc::new(CRC64_XZ);
    let table = TableCrc::new(CRC64_XZ);

    let mut group = c.benchmark_group("crc64_engines");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("bitwise_240B", |b| {
        b.iter(|| black_box(bitwise.checksum(black_box(&data))))
    });
    group.bench_function("table_240B", |b| {
        b.iter(|| black_box(table.checksum(black_box(&data))))
    });
    group.bench_function("slice_by_8_240B", |b| {
        b.iter(|| black_box(FLIT_CRC64_SLICE.checksum(black_box(&data))))
    });
    group.finish();
}

fn bench_flit68(c: &mut Criterion) {
    let flit = Flit68::new(FlitHeader::with_seq(17));
    let wire = flit.encode();

    let mut group = c.benchmark_group("flit68");
    group.throughput(Throughput::Bytes(68));
    group.bench_function("encode", |b| b.iter(|| black_box(flit.encode())));
    group.bench_function("decode_clean", |b| {
        b.iter(|| black_box(Flit68::decode(black_box(&wire))))
    });
    group.finish();
}

fn bench_flit256(c: &mut Criterion) {
    let mut flit = Flit256::new(FlitHeader::with_seq(5));
    flit.payload.copy_from_slice(&payload240());
    let cxl = CxlFlitCodec::new();
    let rxl = RxlFlitCodec::new();
    let cxl_wire = cxl.encode(&flit);
    let rxl_wire = rxl.encode(&flit, 5);

    let mut group = c.benchmark_group("flit256");
    group.throughput(Throughput::Bytes(256));
    group.bench_function("cxl_encode", |b| {
        b.iter(|| black_box(cxl.encode(black_box(&flit))))
    });
    group.bench_function("cxl_decode_clean", |b| {
        b.iter(|| black_box(cxl.decode(black_box(&cxl_wire))))
    });
    group.bench_function("rxl_encode", |b| {
        b.iter(|| black_box(rxl.encode(black_box(&flit), black_box(5))))
    });
    group.bench_function("rxl_decode_clean", |b| {
        b.iter(|| black_box(rxl.decode(black_box(&rxl_wire), black_box(5))))
    });
    group.finish();
}

fn bench_reed_solomon(c: &mut Criterion) {
    // An RS(68,64)-shaped word: 64 data symbols + 4 parity symbols of the
    // RS(255,251) mother code (t = 2, the general Berlekamp–Massey path).
    let rs68 = ShortenedRs::new(RsCode::new(255, 251), 64);
    let data64: Vec<u8> = (0..64u32).map(|i| (i * 13 + 3) as u8).collect();
    let clean68 = rs68.encode(&data64);
    let mut corrupted68 = clean68.clone();
    corrupted68[20] ^= 0x5A;

    let mut group = c.benchmark_group("rs_68_64");
    group.throughput(Throughput::Bytes(68));
    group.bench_function("encode", |b| b.iter(|| black_box(rs68.encode(&data64))));
    group.bench_function("decode_clean", |b| {
        b.iter(|| {
            let mut word = clean68.clone();
            black_box(rs68.decode_in_place(&mut word))
        })
    });
    group.bench_function("decode_one_error", |b| {
        b.iter(|| {
            let mut word = corrupted68.clone();
            black_box(rs68.decode_in_place(&mut word))
        })
    });
    group.finish();

    // The interleaved CXL flit FEC (3 × shortened RS(255,253)) in its
    // streaming in-place form — the per-hop cost of every switch traversal.
    let fec = InterleavedFec::cxl_flit();
    let data250: Vec<u8> = (0..250u32).map(|i| (i * 11 + 1) as u8).collect();
    let clean256 = fec.encode(&data250);
    let mut burst256 = clean256.clone();
    burst256[100] ^= 0xFF;
    burst256[101] ^= 0x3C;
    burst256[102] ^= 0x81;

    let mut group = c.benchmark_group("interleaved_fec_256B");
    group.throughput(Throughput::Bytes(256));
    group.bench_function("encode_into", |b| {
        let mut block = clean256.clone();
        b.iter(|| {
            block[..250].copy_from_slice(&data250);
            fec.encode_into(black_box(&mut block));
        })
    });
    group.bench_function("decode_clean", |b| {
        let mut block = clean256.clone();
        b.iter(|| black_box(fec.decode(black_box(&mut block))))
    });
    group.bench_function("decode_3B_burst", |b| {
        b.iter(|| {
            let mut block = burst256.clone();
            black_box(fec.decode(&mut block))
        })
    });
    group.finish();
}

fn bench_channel_sampling(c: &mut Criterion) {
    // Per-link error sampling at the quiet-link operating point (BER 1e-6,
    // 256-byte flits): the per-traversal Bernoulli draw the engine used to
    // make for every flit, versus the geometric skip-ahead cursor that only
    // touches the RNG at (rare) error events. The ideal-channel row is the
    // cursor's floor: a cached `never` prediction and no RNG at all.
    const FLITS: u64 = 4096;
    let mut group = c.benchmark_group("channel_sampling");
    group.throughput(Throughput::Elements(FLITS));
    group.bench_function("per_flit_bernoulli_ber1e6", |b| {
        let ch = ChannelErrorModel::random(1e-6);
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        b.iter(|| {
            let mut data = [0u8; 256];
            let mut flips = 0usize;
            for _ in 0..FLITS {
                flips += ch.apply(black_box(&mut data), &mut rng);
            }
            black_box(flips)
        })
    });
    group.bench_function("skip_ahead_ber1e6", |b| {
        let mut ch = ChannelErrorModel::random(1e-6);
        let mut cursor = EventCursor::new();
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        b.iter(|| {
            let mut data = [0u8; 256];
            let mut flips = 0usize;
            for slot in 0..FLITS {
                flips += cursor.advance(&mut ch, black_box(&mut data), slot as f64, &mut rng);
            }
            black_box(flips)
        })
    });
    group.bench_function("skip_ahead_ideal", |b| {
        let mut ch = ChannelErrorModel::ideal();
        let mut cursor = EventCursor::new();
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        b.iter(|| {
            let mut data = [0u8; 256];
            let mut flips = 0usize;
            for slot in 0..FLITS {
                flips += cursor.advance(&mut ch, black_box(&mut data), slot as f64, &mut rng);
            }
            black_box(flips)
        })
    });
    group.finish();
}

fn bench_gf256_const_mul(c: &mut Criterion) {
    // Multiply-by-constant strategies behind the FEC hot loops (syndrome
    // Horner steps and encoder LFSR taps): the branchy log/exp lookup of the
    // general field multiply, versus the 32-byte nibble-split half-tables
    // (two indexed loads and a XOR, branch-free, pshufb-shaped).
    let data: Vec<u8> = (0..4096u32).map(|i| (i * 37 + 11) as u8).collect();
    let alpha = Gf256::new(rxl_gf256::tables::GF256_GENERATOR);
    let nib = ConstMul::new(rxl_gf256::tables::GF256_GENERATOR);
    let mut group = c.benchmark_group("gf256_const_mul");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("log_exp_4096B", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for &x in black_box(&data) {
                acc = (alpha * Gf256::new(acc)).value() ^ x;
            }
            black_box(acc)
        })
    });
    group.bench_function("nibble_split_4096B", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for &x in black_box(&data) {
                acc = nib.mul(acc) ^ x;
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_latency_histogram(c: &mut Criterion) {
    // The telemetry cost every paced fabric trial pays per delivered
    // message: one log-bucketed record (leading_zeros + shift + mask).
    // Values span the realistic latency range (a few slots to saturation
    // tails) so the branch between exact and log buckets is exercised.
    let values: Vec<u64> = (0..4096u64)
        .map(|i| (i * 2_654_435_761) % 100_000)
        .collect();
    let mut group = c.benchmark_group("latency_histogram");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("record_4096", |b| {
        b.iter(|| {
            let mut h = LatencyHistogram::new();
            for &v in &values {
                h.record(v);
            }
            black_box(h.count())
        })
    });
    group.bench_function("merge", |b| {
        let mut a = LatencyHistogram::new();
        let mut other = LatencyHistogram::new();
        for &v in &values {
            other.record(v);
        }
        b.iter(|| {
            a.merge(black_box(&other));
            black_box(a.count())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_crc_engines,
    bench_flit68,
    bench_flit256,
    bench_reed_solomon,
    bench_channel_sampling,
    bench_gf256_const_mul,
    bench_latency_histogram
);
criterion_main!(benches);
