//! Criterion benchmarks for the Reed–Solomon FEC substrate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use rxl_fec::{InterleavedFec, RsCode, RsDecoder, ShortenedRs};

fn bench_rs_codec(c: &mut Criterion) {
    let code = RsCode::new(255, 239);
    let decoder = RsDecoder::new(code.clone());
    let data: Vec<u8> = (0..239).map(|i| (i * 13 + 5) as u8).collect();
    let clean = code.encode(&data);
    let mut with_errors = clean.clone();
    with_errors[10] ^= 0x55;
    with_errors[200] ^= 0x2A;

    let mut group = c.benchmark_group("rs_255_239");
    group.throughput(Throughput::Bytes(255));
    group.bench_function("encode", |b| {
        b.iter(|| black_box(code.encode(black_box(&data))))
    });
    group.bench_function("decode_clean", |b| {
        b.iter(|| {
            let mut w = clean.clone();
            black_box(decoder.decode_in_place(&mut w))
        })
    });
    group.bench_function("decode_two_errors", |b| {
        b.iter(|| {
            let mut w = with_errors.clone();
            black_box(decoder.decode_in_place(&mut w))
        })
    });
    group.finish();
}

fn bench_flit_fec(c: &mut Criterion) {
    let fec = InterleavedFec::cxl_flit();
    let data: Vec<u8> = (0..250u32).map(|i| (i * 7 + 1) as u8).collect();
    let clean = fec.encode(&data);
    let mut burst = clean.clone();
    burst[100] ^= 0xFF;
    burst[101] ^= 0x0F;
    burst[102] ^= 0xF0;

    let mut group = c.benchmark_group("cxl_flit_fec");
    group.throughput(Throughput::Bytes(256));
    group.bench_function("encode_256B", |b| {
        b.iter(|| black_box(fec.encode(black_box(&data))))
    });
    group.bench_function("decode_clean_256B", |b| {
        b.iter(|| {
            let mut w = clean.clone();
            black_box(fec.decode(&mut w))
        })
    });
    group.bench_function("decode_3_symbol_burst_256B", |b| {
        b.iter(|| {
            let mut w = burst.clone();
            black_box(fec.decode(&mut w))
        })
    });
    group.finish();
}

fn bench_subblock(c: &mut Criterion) {
    let sb = ShortenedRs::cxl_subblock(83);
    let data: Vec<u8> = (0..83).map(|i| (i * 3) as u8).collect();
    let clean = sb.encode(&data);
    let mut group = c.benchmark_group("shortened_subblock");
    group.throughput(Throughput::Bytes(85));
    group.bench_function("encode_85B", |b| {
        b.iter(|| black_box(sb.encode(black_box(&data))))
    });
    group.bench_function("decode_single_error_85B", |b| {
        b.iter(|| {
            let mut w = clean.clone();
            w[40] ^= 0x3C;
            black_box(sb.decode_in_place(&mut w))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rs_codec, bench_flit_fec, bench_subblock);
criterion_main!(benches);
