//! Criterion benchmarks for the CRC / ISN codecs and the full flit pipelines.
//!
//! These are library-performance benchmarks (not paper artifacts): they show
//! the cost of the ISN construction relative to the baseline CRC is
//! negligible in software, mirroring the paper's hardware argument
//! (Section 7.3), and they size the flit encode/decode throughput that the
//! Monte-Carlo simulator builds on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use rxl_core::{CxlStack, RxlStack};
use rxl_crc::{catalog::FLIT_CRC64, Crc64, IsnCrc64};
use rxl_flit::{CxlFlitCodec, Flit256, FlitHeader, RxlFlitCodec};

fn payload() -> Vec<u8> {
    (0..240u32).map(|i| (i * 31 + 7) as u8).collect()
}

fn bench_crc(c: &mut Criterion) {
    let data = payload();
    let crc = Crc64::flit();
    let isn = IsnCrc64::new(FLIT_CRC64);
    let header = [0x12u8, 0x34];

    let mut group = c.benchmark_group("crc64");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("baseline_checksum_240B", |b| {
        b.iter(|| black_box(crc.checksum(black_box(&data))))
    });
    group.bench_function("isn_encode_240B", |b| {
        b.iter(|| black_box(isn.encode(black_box(&header), black_box(&data), black_box(713))))
    });
    group.bench_function("isn_verify_240B", |b| {
        let tag = isn.encode(&header, &data, 713);
        b.iter(|| black_box(isn.verify(black_box(&header), black_box(&data), 713, tag)))
    });
    group.finish();
}

fn bench_flit_codecs(c: &mut Criterion) {
    let mut flit = Flit256::new(FlitHeader::with_seq(5));
    flit.payload.copy_from_slice(&payload());
    let cxl = CxlFlitCodec::new();
    let rxl = RxlFlitCodec::new();
    let cxl_wire = cxl.encode(&flit);
    let rxl_wire = rxl.encode(&flit, 5);

    let mut group = c.benchmark_group("flit_codec");
    group.throughput(Throughput::Bytes(256));
    group.bench_function("cxl_encode", |b| {
        b.iter(|| black_box(cxl.encode(black_box(&flit))))
    });
    group.bench_function("rxl_encode", |b| {
        b.iter(|| black_box(rxl.encode(black_box(&flit), black_box(5))))
    });
    group.bench_function("cxl_decode_clean", |b| {
        b.iter(|| black_box(cxl.decode(black_box(&cxl_wire))))
    });
    group.bench_function("rxl_decode_clean", |b| {
        b.iter(|| black_box(rxl.decode(black_box(&rxl_wire), black_box(5))))
    });
    group.finish();
}

fn bench_stacks(c: &mut Criterion) {
    let mut flit = Flit256::new(FlitHeader::ack(0));
    flit.payload.copy_from_slice(&payload());

    let mut group = c.benchmark_group("stack_session");
    group.throughput(Throughput::Bytes(256));
    group.bench_function("rxl_send_receive", |b| {
        b.iter(|| {
            let mut tx = RxlStack::new();
            let mut rx = RxlStack::new();
            for _ in 0..8 {
                let wire = tx.send(&flit);
                black_box(rx.receive(&wire).unwrap());
            }
        })
    });
    group.bench_function("cxl_send_receive", |b| {
        b.iter(|| {
            let mut tx = CxlStack::new();
            let mut rx = CxlStack::new();
            let mut f = flit.clone();
            f.header = FlitHeader::with_seq(0);
            for _ in 0..8 {
                let wire = tx.send(&f);
                black_box(rx.receive(&wire).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_crc, bench_flit_codecs, bench_stacks);
criterion_main!(benches);
