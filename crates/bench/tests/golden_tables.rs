//! Golden pins for the *printed* experiment tables: the exact formatted FIT
//! and efficiency figures `run_all` reproduces from the paper. These catch
//! silent drift in either the models or the table formatting.

#[test]
fn reliability_table_prints_the_paper_figures() {
    let t = rxl_bench::reliability_table();
    for needle in [
        "3.00e-5",  // Eqn (2) FER_UC
        "98.53%",   // Eqn (3) FEC correction fraction
        "1.63e-24", // Eqn (4) FER_UD direct
        "5.40e15",  // Eqn (8) FIT CXL behind one switch
        "1.84e18",  // RXL improvement ratio
    ] {
        assert!(t.contains(needle), "missing {needle:?} in:\n{t}");
    }
}

#[test]
fn bandwidth_table_prints_the_paper_figures() {
    let t = rxl_bench::bandwidth_table();
    for needle in [
        "0.150%", // Eqn (11) direct go-back-N loss
        "0.299%", // Eqns (12)/(14) switched piggyback / RXL loss
        "10.0%",  // Eqn (13) standalone ACK at p_coal = 0.1
        "100.0%", // Eqn (13) standalone ACK at p_coal = 1.0
    ] {
        assert!(t.contains(needle), "missing {needle:?} in:\n{t}");
    }
}

#[test]
fn fig8_table_covers_the_requested_levels() {
    let t = rxl_bench::fig8_table(4);
    for needle in ["5.40e15", "1.08e16", "1.62e16", "2.16e16"] {
        assert!(t.contains(needle), "missing {needle:?} in:\n{t}");
    }
}
