//! Spatial congestion attribution measurement (`fabric_hotspots`).
//!
//! Runs the incast load sweep on the canonical leaf–spine pod with a
//! [`MetricsProbe`](rxl_telemetry::MetricsProbe) riding every trial, then
//! reports *where* the fabric hurts: per-link utilization at the saturation
//! knee, per-rung top-k bottleneck attribution (the knee report names the
//! saturated leaf-0 uplink instead of just locating the knee on the load
//! axis), a link × window traversal heatmap, and the engine self-profiler's
//! per-phase slot-loop accounting. The machine-readable form
//! (`BENCH_hotspots.json`) is schema-checked in CI alongside the other
//! `BENCH_*.json` trajectories.
//!
//! The workload is deliberately asymmetric — [`TrafficMatrix::Incast`] onto
//! leaf 1 loads only the two leaf-0 hosts, downstream-only — because a
//! symmetric matrix heats every link on a session's path equally (path
//! conservation) and both trunks of the two-leaf pod would tie exactly.
//! Under incast the trunks still tie on *utilization*, but every credit
//! stall lands on the leaf-0 → spine uplink, so stall pressure uniquely
//! identifies the bottleneck. A shallow `queue_capacity` keeps that backlog
//! visible as stalls instead of silently absorbed buffering.

use rxl_fabric::{
    EnginePhase, FabricConfig, FabricSim, FabricTopology, FabricWorkload, RoutingTable,
};
use rxl_link::{ChannelErrorModel, ProtocolVariant};
use rxl_load::{ArrivalProcess, LoadSweep, LoadSweepConfig, TrafficMatrix};
use rxl_telemetry::{AttributedSweep, PhaseProfile};

use crate::json::{JsonDocument, JsonRow};
use crate::render_table;

/// Heatmap window width, in slots.
pub const HEAT_WINDOW_SLOTS: u64 = 64;

/// Links to name per rung in the attribution rows.
pub const TOP_K: usize = 3;

/// The full spatial-attribution measurement: the attributed sweep plus the
/// engine self-profile.
#[derive(Clone, Debug)]
pub struct HotspotsReport {
    /// Snapshot label (`current` / `run_all` / CI).
    pub label: String,
    /// Topology name.
    pub topology: String,
    /// The topology object (for link descriptions in exports).
    pub fabric: FabricTopology,
    /// Traffic-matrix label.
    pub matrix: String,
    /// Protocol variant simulated.
    pub protocol: &'static str,
    /// The load sweep with per-rung congestion attribution.
    pub sweep: AttributedSweep,
    /// Engine self-profile (wall-clock; machine-local, not reproducible).
    pub profile: PhaseProfile,
}

fn pod_config() -> FabricConfig {
    FabricConfig {
        // Shallow lanes surface the incast backlog as credit stalls.
        queue_capacity: 8,
        ..FabricConfig::new(ProtocolVariant::Rxl)
            .with_channel(ChannelErrorModel::ideal())
            .with_seed(0x407_5707)
    }
}

/// Runs the spatial-attribution suite (incast onto leaf 1 of the leaf–spine
/// pod, RXL, ideal channel). `small` selects the CI smoke configuration.
pub fn run_hotspots(small: bool, label: &str) -> HotspotsReport {
    let (loads, messages, trials) = if small {
        (vec![0.20, 0.80], 300, 1)
    } else {
        // Both leaf-0 hosts inject downstream-only, so the uplink crosses
        // line rate at per-session load 0.5; the ladder brackets that knee.
        (vec![0.10, 0.20, 0.30, 0.40, 0.60, 0.80], 2_000, 4)
    };
    let topology = FabricTopology::leaf_spine(2, 1, 2);
    let config = pod_config();
    let sweep = LoadSweep::new(
        topology.clone(),
        config,
        LoadSweepConfig {
            loads,
            messages_per_session: messages,
            trials,
            matrix: TrafficMatrix::Incast { leaf: 1 },
            arrival: ArrivalProcess::fixed(1.0),
            ..LoadSweepConfig::default()
        },
    );
    let attributed = AttributedSweep::run_with_heatmap(&sweep, TOP_K, HEAT_WINDOW_SLOTS);

    // The self-profile rides one standalone symmetric trial: wall-clock
    // readings never enter the exact-merge sweep aggregates.
    let routing = RoutingTable::new(&topology);
    let mut sim = FabricSim::with_probe(
        &topology,
        &routing,
        pod_config(),
        rxl_telemetry::EngineProfiler::new(),
    );
    sim.begin(&FabricWorkload::symmetric(
        topology.session_count(),
        messages,
        8,
        13,
    ));
    let _ = sim.step(u64::MAX);
    let (_, profiler) = sim.finish_with_probe();

    HotspotsReport {
        label: label.to_string(),
        topology: attributed.report.topology.clone(),
        fabric: topology,
        matrix: attributed.report.matrix.clone(),
        protocol: crate::variant_name(ProtocolVariant::Rxl),
        sweep: attributed,
        profile: profiler.profile(),
    }
}

/// Renders the report as aligned text tables: per-rung attribution, the
/// knee sentence, and the self-profile.
pub fn hotspots_table(report: &HotspotsReport) -> String {
    let mut rows = Vec::new();
    for rung in &report.sweep.rungs {
        for (rank, l) in rung.top.iter().enumerate() {
            rows.push(vec![
                report.label.clone(),
                format!("{:.2}", rung.offered_load),
                rung.signature.label().to_string(),
                format!("#{}", rank + 1),
                l.description.clone(),
                format!("{:.1}%", l.utilization * 100.0),
                l.stall_slots.to_string(),
                format!("{:.3}", l.score),
            ]);
        }
    }
    let mut out = render_table(
        "Congestion attribution (incast onto leaf 1; leaf-spine pod, RXL)",
        &[
            "label",
            "load",
            "signature",
            "rank",
            "link",
            "util",
            "stalls",
            "score",
        ],
        &rows,
    );
    match report.sweep.knee_attribution() {
        Some(knee) => {
            let top = knee.top.first().expect("knee rung moved flits");
            out.push_str(&format!(
                "knee at {:.2}: {} at {:.0}% util, {} credit-stall slots ({})\n",
                knee.offered_load,
                top.description,
                top.utilization * 100.0,
                top.stall_slots,
                knee.signature.label()
            ));
        }
        None => out.push_str("no saturation knee inside the ladder\n"),
    }
    out.push('\n');
    out.push_str(&report.profile.to_string());
    out
}

/// Serialises the report as a JSON document (hand-rolled — the build
/// container has no serde) for `BENCH_hotspots.json`. Four row kinds share
/// the document:
///
/// * `"link"` — per-link totals of the hottest analyzed rung (the knee
///   rung, or the heaviest rung when the ladder never crossed a knee).
/// * `"attribution"` — per-rung top-k bottleneck links with signature.
/// * `"heat"` — the hottest rung's link × window traversal matrix, one row
///   per window (`counts` in link-index order).
/// * `"profile"` — engine self-profiler phases (wall-clock; the one row
///   kind that is machine-local rather than reproducible).
pub fn hotspots_json(report: &HotspotsReport) -> String {
    let sweep = &report.sweep;
    let hot_rung = sweep.report.knee.unwrap_or(sweep.rungs.len() - 1);
    let rung = &sweep.rungs[hot_rung];
    let registry = &sweep.registries[hot_rung];
    let mut rows = Vec::new();

    let analysis = rxl_telemetry::BottleneckReport::analyze(&report.fabric, registry, rung.slots);
    for l in &analysis.links {
        rows.push(
            JsonRow::new()
                .str("kind", "link")
                .str("label", &report.label)
                .num("load", rung.offered_load, 2)
                .raw("link", l.link)
                .str("desc", &l.description)
                .raw("endpoint_link", l.endpoint_link)
                .raw("traversals", l.traversals)
                .num("utilization", l.utilization, 4)
                .raw("stall_slots", l.stall_slots)
                .raw("retransmits", l.retransmits)
                .raw("errors", l.errors)
                .num("score", l.score, 4)
                .finish(),
        );
    }

    for (i, r) in sweep.rungs.iter().enumerate() {
        for (rank, l) in r.top.iter().enumerate() {
            rows.push(
                JsonRow::new()
                    .str("kind", "attribution")
                    .str("label", &report.label)
                    .num("load", r.offered_load, 2)
                    .raw("knee", sweep.report.knee == Some(i))
                    .str("signature", r.signature.label())
                    .raw("rank", rank + 1)
                    .raw("link", l.link)
                    .str("desc", &l.description)
                    .num("utilization", l.utilization, 4)
                    .raw("stall_slots", l.stall_slots)
                    .num("score", l.score, 4)
                    .finish(),
            );
        }
    }

    for (w, counts) in registry.heatmap().iter().enumerate() {
        let joined = counts
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        rows.push(
            JsonRow::new()
                .str("kind", "heat")
                .num("load", rung.offered_load, 2)
                .raw("window", w)
                .raw("start_slot", w as u64 * HEAT_WINDOW_SLOTS)
                .raw("counts", format!("[{joined}]"))
                .finish(),
        );
    }

    for phase in EnginePhase::ALL {
        rows.push(
            JsonRow::new()
                .str("kind", "profile")
                .str("phase", phase.label())
                .raw("nanos", report.profile.nanos[phase.index()])
                .num("share", report.profile.share(phase), 4)
                .num("ns_per_slot", report.profile.nanos_per_slot(phase), 1)
                .finish(),
        );
    }

    JsonDocument::new("hotspots")
        .field(
            "topology",
            format!("\"{}\"", crate::json_escape(&report.topology)),
        )
        .field(
            "matrix",
            format!("\"{}\"", crate::json_escape(&report.matrix)),
        )
        .field("protocol", format!("\"{}\"", report.protocol))
        .field("heat_window_slots", HEAT_WINDOW_SLOTS)
        .rows(rows)
}

/// Writes the JSON form to `BENCH_hotspots.json` in `out` (the repo root
/// when `None`) and returns the path written.
pub fn write_hotspots_json(
    report: &HotspotsReport,
    out: Option<&std::path::Path>,
) -> std::path::PathBuf {
    crate::json::write_artifact("BENCH_hotspots.json", out, &hotspots_json(report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_attributes_the_uplink_and_serialises() {
        let report = run_hotspots(true, "test");
        // The heavy rung's top attribution names the leaf-0 uplink (dense
        // link 8 = first trunk of the 8-endpoint pod).
        let heavy = report.sweep.rungs.last().expect("ladder is non-empty");
        assert_eq!(heavy.top[0].link, 8, "top link: {:?}", heavy.top);
        assert!(heavy.top[0].stall_slots > 0);
        let table = hotspots_table(&report);
        assert!(table.contains("Congestion attribution"));
        assert!(table.contains("engine self-profile"));
        let json = hotspots_json(&report);
        assert!(json.contains("\"bench\": \"hotspots\""));
        for kind in ["link", "attribution", "heat", "profile"] {
            assert!(
                json.contains(&format!("\"kind\": \"{kind}\"")),
                "missing row kind {kind}"
            );
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
