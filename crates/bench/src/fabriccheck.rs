//! Fabric-scale Monte-Carlo cross-check of the analytic FIT projection.
//!
//! `fabric_fit_crosscheck` drives whole ring fabrics of concurrent sessions
//! through the `rxl-fabric` discrete-event simulator at an accelerated BER —
//! once as baseline CXL, once as RXL — and tabulates the empirical
//! `Fail_order` rate next to `FabricSpec`'s analytic projection evaluated at
//! the measured accelerated operating point. The machine-readable JSON form
//! seeds the repository's performance/accuracy trajectory
//! (`BENCH_fabric.json`).

use rxl_core::{FabricSimEvidence, FabricSimOptions, FabricSpec, ProtocolKind};

use crate::json::{JsonDocument, JsonRow};
use crate::{render_table, sci};

/// One protocol's worth of fabric cross-check evidence.
#[derive(Clone, Debug)]
pub struct FabricCheckRow {
    /// Protocol simulated.
    pub kind: ProtocolKind,
    /// The spec whose projection was cross-checked.
    pub spec: FabricSpec,
    /// Simulation evidence (report + empirical-vs-analytic comparison).
    pub evidence: FabricSimEvidence,
}

/// Runs the cross-check for both protocols over a fabric of `devices`
/// devices behind `levels` switching levels.
pub fn run_fabric_crosscheck(
    devices: u64,
    levels: u32,
    opts: &FabricSimOptions,
) -> Vec<FabricCheckRow> {
    [ProtocolKind::Cxl, ProtocolKind::Rxl]
        .into_iter()
        .map(|kind| {
            let spec = FabricSpec::new(kind, devices, levels);
            let evidence = spec.simulate(opts);
            FabricCheckRow {
                kind,
                spec,
                evidence,
            }
        })
        .collect()
}

/// Renders the cross-check rows as an aligned text table with a summary of
/// the agreement.
pub fn fabric_crosscheck_table(rows: &[FabricCheckRow], opts: &FabricSimOptions) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let cc = &row.evidence.crosscheck;
            vec![
                row.kind.name().to_string(),
                row.evidence.sessions.to_string(),
                cc.payload_flits.to_string(),
                cc.silent_drops.to_string(),
                cc.undetected_drop_events.to_string(),
                sci(cc.measured_drop_rate),
                sci(cc.measured_p_coalescing),
                sci(cc.empirical_fit),
                sci(cc.analytic_fit),
                if cc.agrees_within(3.0) { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    let mut out = render_table(
        &format!(
            "Fabric FIT cross-check ({} topology, accelerated BER {:.0e}, {} trials)",
            rows.first()
                .map(|r| r.evidence.topology.as_str())
                .unwrap_or("?"),
            opts.ber,
            opts.trials,
        ),
        &[
            "protocol",
            "sessions",
            "payload flits",
            "silent drops",
            "Fail_order events",
            "drop rate/hop",
            "p_coalescing",
            "empirical FIT",
            "analytic FIT",
            "agree (3 sigma)",
        ],
        &table_rows,
    );
    for row in rows {
        out.push_str(&format!(
            "\n{}: fabric of {} devices -> empirical {} FIT vs analytic {} FIT at the accelerated point",
            row.kind.name(),
            row.spec.devices,
            sci(row.evidence.empirical_fabric_fit),
            sci(row.evidence.analytic_fabric_fit),
        ));
    }
    out.push_str(
        "\nExpected shape (paper Section 7.1): CXL's empirical Fail_order rate tracks the analytic\n\
         levels x FER_UC x p_coalescing projection; RXL observes zero undetected failures.\n",
    );
    out
}

/// Serialises the cross-check rows as a JSON document (hand-rolled — the
/// build container has no serde) for `BENCH_fabric.json`.
pub fn fabric_crosscheck_json(rows: &[FabricCheckRow], opts: &FabricSimOptions) -> String {
    JsonDocument::new("fabric_fit_crosscheck")
        .field("ber", format!("{:e}", opts.ber))
        .field("trials", opts.trials)
        .field("messages_per_session", opts.messages_per_session)
        .rows(rows.iter().map(|row| {
            let cc = &row.evidence.crosscheck;
            let r = &row.evidence.report;
            JsonRow::new()
                .str("protocol", row.kind.name())
                .str("topology", &row.evidence.topology)
                .raw("devices", row.spec.devices)
                .raw("switch_levels", cc.path_switches)
                .raw("sessions", row.evidence.sessions)
                .raw("payload_flits", cc.payload_flits)
                .raw("silent_drops", cc.silent_drops)
                .raw("fail_order_events", cc.undetected_drop_events)
                .raw("replay_leak_events", r.replay_leak_events)
                .sci("drop_rate_per_hop", cc.measured_drop_rate)
                .sci("p_coalescing", cc.measured_p_coalescing)
                .sci("empirical_failure_rate", cc.empirical_failure_rate)
                .sci("analytic_failure_rate", cc.analytic_failure_rate)
                .sci("empirical_fit", cc.empirical_fit)
                .sci("analytic_fit", cc.analytic_fit)
                .sci("empirical_fabric_fit", row.evidence.empirical_fabric_fit)
                .sci("analytic_fabric_fit", row.evidence.analytic_fabric_fit)
                .raw("ordering_failures", r.failures.ordering_failures)
                .raw("duplicate_deliveries", r.failures.duplicate_deliveries)
                .raw("clean_deliveries", r.failures.clean_deliveries)
                .raw("drained_trials", r.drained_trials)
                .raw("agrees_3sigma", cc.agrees_within(3.0))
                .finish()
        }))
}

/// Writes the JSON form of the cross-check to `BENCH_fabric.json` in `out`
/// (the repo root when `None`; shared by the `run_all` and
/// `fabric_fit_crosscheck` binaries' `--json` flag) and returns the path
/// written.
pub fn write_fabric_json(
    rows: &[FabricCheckRow],
    opts: &FabricSimOptions,
    out: Option<&std::path::Path>,
) -> std::path::PathBuf {
    crate::json::write_artifact(
        "BENCH_fabric.json",
        out,
        &fabric_crosscheck_json(rows, opts),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> FabricSimOptions {
        FabricSimOptions {
            ber: 1e-4,
            sessions: 3,
            messages_per_session: 60,
            trials: 2,
            base_seed: 9,
        }
    }

    #[test]
    fn crosscheck_rows_cover_both_protocols() {
        let rows = run_fabric_crosscheck(64, 2, &tiny_opts());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].kind, ProtocolKind::Cxl);
        assert_eq!(rows[1].kind, ProtocolKind::Rxl);
        assert_eq!(rows[1].evidence.crosscheck.undetected_drop_events, 0);
    }

    #[test]
    fn table_and_json_render_both_rows() {
        let opts = tiny_opts();
        let rows = run_fabric_crosscheck(64, 2, &opts);
        let table = fabric_crosscheck_table(&rows, &opts);
        assert!(table.contains("CXL"));
        assert!(table.contains("RXL"));
        assert!(table.contains("Fabric FIT cross-check"));

        let json = fabric_crosscheck_json(&rows, &opts);
        assert!(json.contains("\"bench\": \"fabric_fit_crosscheck\""));
        assert!(json.contains("\"protocol\": \"CXL\""));
        assert!(json.contains("\"protocol\": \"RXL\""));
        // Balanced braces/brackets — a cheap structural sanity check in the
        // absence of a JSON parser.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in:\n{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
