//! Request-tail measurement (`request_tail`): fanout tail amplification and
//! the operating-point recommendation.
//!
//! Two experiments share the report:
//!
//! * **Fanout ladder** — the open-system serving mode runs the uniform
//!   fanout workload at a *fixed per-message load* while the fanout `k`
//!   climbs. Message-level percentiles barely move; the request p99 (the
//!   max of `k` shard latencies) amplifies monotonically with `k` — the
//!   classic tail-at-scale effect, measured for baseline CXL and RXL side
//!   by side.
//! * **Operating point** — the incast request ladder on the shallow
//!   leaf–spine pod climbs until the steady-state request tail breaks the
//!   SLO; [`OperatingPoint`] names the max safe offered load *and* the
//!   binding bottleneck link (the leaf-0 → spine uplink), joining the
//!   request-scale view to the spatial bottleneck ranking.
//!
//! The machine-readable form (`BENCH_requests.json`) is schema-checked in
//! CI alongside the other `BENCH_*.json` trajectories; the per-shard span
//! trace of the binding rung exports as JSONL with its dropped-span
//! counters surfaced (bounded rings truncate, and the export must say so).

use rxl_fabric::{FabricConfig, FabricTopology};
use rxl_link::{ChannelErrorModel, ProtocolVariant};
use rxl_load::{ArrivalProcess, FanoutShape};
use rxl_telemetry::{
    BottleneckReport, OperatingPoint, RequestSweep, RequestSweepConfig, RequestSweepReport, SloSpec,
};

use crate::json::{JsonDocument, JsonRow};
use crate::render_table;

/// Fixed per-session message load of the fanout ladder (well below the
/// pod's saturation, so amplification is pure max-of-`k` statistics, not
/// queueing collapse).
pub const FANOUT_MESSAGE_LOAD: f64 = 0.08;

/// Per-trial trace capacity of the operating-point ladder.
const TRACE_CAPACITY: usize = 512;

/// One fanout rung of one protocol.
#[derive(Clone, Debug)]
pub struct FanoutRow {
    /// Protocol label (`RXL` / `CXL`).
    pub protocol: &'static str,
    /// Shards per request.
    pub fanout: usize,
    /// The rung's sweep point (single-load ladder).
    pub point: rxl_telemetry::RequestPoint,
    /// `p99(k) / p99(1)` within the same protocol.
    pub amplification: f64,
}

/// The full request-tail measurement.
#[derive(Clone, Debug)]
pub struct RequestsReport {
    /// Snapshot label (`current` / `run_all` / CI).
    pub label: String,
    /// Topology name.
    pub topology: String,
    /// The topology object (for link descriptions in exports).
    pub fabric: FabricTopology,
    /// Fanout ladder rows, protocol-major, fanout-ascending.
    pub fanout_rows: Vec<FanoutRow>,
    /// The incast operating-point ladder (RXL).
    pub ladder: RequestSweepReport,
    /// The SLO the recommender judged against.
    pub slo: SloSpec,
    /// The operating-point recommendation.
    pub operating: OperatingPoint,
    /// Prometheus exposition of the binding rung's request families.
    pub prometheus: String,
    /// JSONL span trace of the binding rung (trial 0).
    pub trace_jsonl: String,
    /// Spans retained in the binding rung's trace ring.
    pub trace_spans: usize,
    /// Spans evicted from the ring (surfaced per the truncation contract).
    pub dropped_spans: u64,
}

fn pod_config(variant: ProtocolVariant, seed: u64) -> FabricConfig {
    FabricConfig {
        queue_capacity: 8,
        ..FabricConfig::new(variant)
            .with_channel(ChannelErrorModel::ideal())
            .with_seed(seed)
    }
}

/// Runs the request-tail suite. `small` selects the CI smoke configuration.
pub fn run_requests(small: bool, label: &str) -> RequestsReport {
    let (fanouts, ladder_loads, trials, measure_slots) = if small {
        (vec![1, 4], vec![0.05, 0.50], 1, 1_500)
    } else {
        // The incast pod's two leaf-0 streams cross uplink line rate at
        // per-session load 0.5; the ladder brackets that crossing.
        (
            vec![1, 2, 4, 8],
            vec![0.05, 0.10, 0.20, 0.30, 0.40, 0.60],
            2,
            4_000,
        )
    };
    let topology = FabricTopology::leaf_spine(2, 1, 2);

    let mut fanout_rows = Vec::new();
    for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
        let mut base_p99 = None;
        for &k in &fanouts {
            let report = RequestSweep::new(
                topology.clone(),
                // Same seed at every fanout: the generator's shared arrival
                // schedule then makes the k-rungs pathwise nested (fanout 4
                // requests are unions of fanout 2 requests), so the measured
                // amplification is exactly the max-of-k effect.
                pod_config(variant, 0x7E57_0000),
                RequestSweepConfig {
                    loads: vec![FANOUT_MESSAGE_LOAD],
                    fanout: k,
                    shape: FanoutShape::Uniform,
                    trials,
                    arrival: ArrivalProcess::poisson(1.0),
                    measure_slots,
                    window_slots: 400,
                    ..RequestSweepConfig::default()
                },
            )
            .run();
            let point = report.points.into_iter().next().expect("one rung");
            let p99 = point.steady.stats.p99 as f64;
            let base = *base_p99.get_or_insert(p99.max(1.0));
            fanout_rows.push(FanoutRow {
                protocol: crate::variant_name(variant),
                fanout: k,
                point,
                amplification: p99 / base,
            });
        }
    }

    let slo = SloSpec::default();
    let sweep = RequestSweep::new(
        topology.clone(),
        pod_config(ProtocolVariant::Rxl, 0x407_5707),
        RequestSweepConfig {
            loads: ladder_loads,
            fanout: 2,
            shape: FanoutShape::Incast { leaf: 1 },
            trials,
            arrival: ArrivalProcess::poisson(1.0),
            measure_slots,
            window_slots: 400,
            trace_capacity: TRACE_CAPACITY,
            ..RequestSweepConfig::default()
        },
    );
    let (ladder, rungs) = sweep.run_detailed();
    let operating = OperatingPoint::recommend(&ladder, &slo);
    let binding_idx = ladder
        .points
        .iter()
        .position(|p| Some(p.offered_load) == operating.binding_load)
        .unwrap_or(ladder.points.len() - 1);
    let rung = &rungs[binding_idx];
    let bottleneck = BottleneckReport::analyze(&topology, &rung.registry, rung.slots);
    let prometheus =
        rung.probe
            .prometheus(&topology, &ladder.points[binding_idx].steady, &bottleneck);
    let trace = rung.probe.trace().expect("ladder runs with tracing");
    RequestsReport {
        label: label.to_string(),
        topology: ladder.topology.clone(),
        fabric: topology,
        fanout_rows,
        slo,
        operating,
        prometheus,
        trace_jsonl: trace.to_jsonl(),
        trace_spans: trace.spans().count(),
        dropped_spans: trace.dropped_spans(),
        ladder,
    }
}

/// Renders the report as aligned text tables plus the operating-point
/// sentence and the trace truncation line.
pub fn requests_table(report: &RequestsReport) -> String {
    let rows: Vec<Vec<String>> = report
        .fanout_rows
        .iter()
        .map(|r| {
            let straggler = r
                .point
                .straggler
                .first()
                .map(|s| s.description.clone())
                .unwrap_or_else(|| "-".to_string());
            vec![
                report.label.clone(),
                r.protocol.to_string(),
                r.fanout.to_string(),
                r.point.requests_completed.to_string(),
                r.point.steady.stats.p50.to_string(),
                r.point.steady.stats.p99.to_string(),
                r.point.steady.stats.p999.to_string(),
                format!("{:.2}×", r.amplification),
                straggler,
            ]
        })
        .collect();
    let mut out = render_table(
        &format!(
            "Request tail amplification vs fanout (uniform shape, per-message load {FANOUT_MESSAGE_LOAD:.2})"
        ),
        &[
            "label", "protocol", "k", "completed", "p50", "p99", "p99.9", "amp", "straggler link",
        ],
        &rows,
    );
    out.push('\n');
    out.push_str(&report.ladder.to_string());
    out.push_str(&format!("operating point: {}\n", report.operating.summary));
    out.push_str(&format!(
        "trace: {} spans retained, {} dropped (bounded ring)\n",
        report.trace_spans, report.dropped_spans
    ));
    out
}

/// Serialises the report for `BENCH_requests.json` (hand-rolled — the build
/// container has no serde). Four row kinds share the document:
///
/// * `"fanout"` — request-tail amplification per protocol × fanout at the
///   fixed per-message load.
/// * `"rung"` — the incast operating-point ladder, steady-state request
///   percentiles plus the rung's hottest link.
/// * `"operating_point"` — the recommendation: max safe load, binding load
///   and binding link.
/// * `"trace"` — span-trace truncation counters of the binding rung.
pub fn requests_json(report: &RequestsReport) -> String {
    let mut rows = Vec::new();
    for r in &report.fanout_rows {
        let straggler = r.point.straggler.first();
        rows.push(
            JsonRow::new()
                .str("kind", "fanout")
                .str("label", &report.label)
                .str("protocol", r.protocol)
                .raw("fanout", r.fanout)
                .num("message_load", FANOUT_MESSAGE_LOAD, 2)
                .raw("completed", r.point.requests_completed)
                .raw("unresolved", r.point.unresolved)
                .raw("p50", r.point.steady.stats.p50)
                .raw("p99", r.point.steady.stats.p99)
                .raw("p999", r.point.steady.stats.p999)
                .raw("max", r.point.steady.stats.max)
                .num("amplification", r.amplification, 3)
                .num("availability", r.point.steady.availability, 6)
                .str(
                    "straggler_link",
                    straggler.map(|s| s.description.as_str()).unwrap_or(""),
                )
                .raw(
                    "straggler_session",
                    straggler.map(|s| s.session as i64).unwrap_or(-1),
                )
                .finish(),
        );
    }

    for (i, p) in report.ladder.points.iter().enumerate() {
        let top = p.top_link.as_ref();
        rows.push(
            JsonRow::new()
                .str("kind", "rung")
                .str("label", &report.label)
                .num("load", p.offered_load, 2)
                .raw("knee", report.ladder.knee == Some(i))
                .raw("offered", p.requests_offered)
                .raw("completed", p.requests_completed)
                .raw("unresolved", p.unresolved)
                .raw("warmup_window", p.warmup_window)
                .raw("windows_used", p.steady.windows_used)
                .raw("p50", p.steady.stats.p50)
                .raw("p99", p.steady.stats.p99)
                .raw("p999", p.steady.stats.p999)
                .num("availability", p.steady.availability, 6)
                .raw("peak_inflight", p.peak_inflight)
                .str("signature", p.signature)
                .raw("top_link", top.map(|l| l.link as i64).unwrap_or(-1))
                .str(
                    "top_link_desc",
                    top.map(|l| l.description.as_str()).unwrap_or(""),
                )
                .finish(),
        );
    }

    let binding = report.operating.binding_link.as_ref();
    rows.push(
        JsonRow::new()
            .str("kind", "operating_point")
            .str("label", &report.label)
            .raw("slo_threshold_slots", report.operating.slo_threshold_slots)
            .num(
                "availability_objective",
                report.operating.availability_objective,
                4,
            )
            .raw(
                "max_safe_load",
                report
                    .operating
                    .max_safe_load
                    .map(|l| format!("{l:.2}"))
                    .unwrap_or_else(|| "null".to_string()),
            )
            .raw(
                "max_safe_p99",
                report
                    .operating
                    .max_safe_p99
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "null".to_string()),
            )
            .raw(
                "binding_load",
                report
                    .operating
                    .binding_load
                    .map(|l| format!("{l:.2}"))
                    .unwrap_or_else(|| "null".to_string()),
            )
            .raw("binding_link", binding.map(|l| l.link as i64).unwrap_or(-1))
            .str(
                "binding_link_desc",
                binding.map(|l| l.description.as_str()).unwrap_or(""),
            )
            .raw(
                "knee_load",
                report
                    .operating
                    .knee_load
                    .map(|l| format!("{l:.2}"))
                    .unwrap_or_else(|| "null".to_string()),
            )
            .str("summary", &report.operating.summary)
            .finish(),
    );

    rows.push(
        JsonRow::new()
            .str("kind", "trace")
            .str("label", &report.label)
            .raw("spans", report.trace_spans)
            .raw("dropped_spans", report.dropped_spans)
            .finish(),
    );

    JsonDocument::new("requests")
        .field(
            "topology",
            format!("\"{}\"", crate::json_escape(&report.topology)),
        )
        .field("fanout_shape", "\"uniform\"")
        .field("ladder_shape", format!("\"{}\"", report.ladder.shape))
        .field("ladder_fanout", report.ladder.fanout)
        .rows(rows)
}

/// Writes the JSON form to `BENCH_requests.json` in `out` (the repo root
/// when `None`) and returns the path written.
pub fn write_requests_json(
    report: &RequestsReport,
    out: Option<&std::path::Path>,
) -> std::path::PathBuf {
    crate::json::write_artifact("BENCH_requests.json", out, &requests_json(report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_amplifies_the_tail_and_names_the_uplink() {
        let report = run_requests(true, "test");
        // Fanout 4 amplifies the request p99 over fanout 1 for both
        // protocols at the same per-message load.
        for proto in ["CXL", "RXL"] {
            let rows: Vec<&FanoutRow> = report
                .fanout_rows
                .iter()
                .filter(|r| r.protocol == proto)
                .collect();
            assert!(
                rows.windows(2)
                    .all(|w| { w[1].point.steady.stats.p99 >= w[0].point.steady.stats.p99 }),
                "{proto} p99 not monotone in fanout"
            );
            assert!(
                rows.last().unwrap().amplification >= 1.0,
                "{proto} tail not amplified"
            );
        }
        // The binding constraint is the leaf-0 uplink (dense link 8).
        let binding = report.operating.binding_link.as_ref().expect("binding");
        assert_eq!(binding.link, 8, "binding link: {}", binding.description);
        assert!(report.operating.summary.contains("binding constraint"));
        // Exports carry the request families and the truncation counters.
        assert!(report.prometheus.contains("rxl_request_latency_p99"));
        assert!(report.trace_jsonl.contains("\"dropped_spans\""));
        let table = requests_table(&report);
        assert!(table.contains("Request tail amplification"));
        assert!(table.contains("operating point:"));
        assert!(table.contains("spans retained"));
        let json = requests_json(&report);
        assert!(json.contains("\"bench\": \"requests\""));
        for kind in ["fanout", "rung", "operating_point", "trace"] {
            assert!(
                json.contains(&format!("\"kind\": \"{kind}\"")),
                "missing row kind {kind}"
            );
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
