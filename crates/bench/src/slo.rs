//! SLO incident replays for the bench harness (`slo_replay`).
//!
//! Re-runs the chaos sweep's two canonical incidents — the ×20 uplink BER
//! storm and the spine failover — as **scored SLO incidents** through
//! `rxl-telemetry`: one `SloProbe` per trial feeds fixed-width windows of
//! latency/availability, the windows feed error-budget burn rates, and the
//! burn series is scored against the incident interval (burn during vs
//! after, peak, time to recovery, alert coverage).
//!
//! Unlike the chaos sweep (greedy injection — the whole offered load lands
//! in window 0), these replays pace injection at a fraction of line rate via
//! [`FabricConfig::with_offered_load`], so arrivals spread across the run
//! and the windowed series shows the incident's *shape*, not just its
//! totals. The measured shape is a classic lagging-indicator outage: during
//! the storm both protocols keep delivering (deliveries dip as the replay
//! backlog builds), and the budget burns in the post-storm drain tail when
//! the delayed messages finally land — with one decisive difference: only
//! baseline CXL taints the availability budget (its drained backlog
//! includes `Fail_order` corruption), while RXL's tail is pure latency.
//!
//! The JSON form (`BENCH_slo.json`) carries two row kinds, discriminated by
//! `"kind"`: one `summary` row per scenario × protocol, and the full
//! per-window `window` series (p50/p99/p99.9, availability, burn rates,
//! alert flags) behind it.

use rxl_chaos::Scenario;
use rxl_fabric::{FabricConfig, FabricTopology, FabricWorkload};
use rxl_link::{ChannelErrorModel, ProtocolVariant};
use rxl_telemetry::{IncidentReplay, IncidentReport, SloSpec};

use crate::json::{JsonDocument, JsonRow};
use crate::{render_table, sci};

/// One scenario × protocol incident replay.
#[derive(Clone, Debug)]
pub struct SloMeasurement {
    /// Snapshot label (`current`, CI).
    pub label: String,
    /// Scenario identifier (`uplink_storm_x<N>` / `spine_failover`).
    pub scenario: String,
    /// Protocol simulated.
    pub variant: &'static str,
    /// Monte-Carlo trials.
    pub trials: u64,
    /// Concurrent sessions.
    pub sessions: usize,
    /// Messages per session per direction.
    pub messages_per_session: usize,
    /// Offered load the injection was paced at.
    pub offered_load: f64,
    /// Telemetry window length (slots).
    pub window_slots: u64,
    /// The scored replay output.
    pub report: IncidentReport,
}

/// Runs both incident replays for both protocols and returns the scored
/// measurements. `small` selects the CI-sized smoke configuration.
pub fn run_slo_replay(small: bool, label: &str) -> Vec<SloMeasurement> {
    let (messages, trials, fault_at, storm_len, window_slots): (usize, u64, u64, u64, u64) =
        if small {
            (800, 1, 150, 150, 100)
        } else {
            (12_000, 4, 2_000, 2_000, 500)
        };
    // 10% of line rate: each stream's arrivals spread over
    // `messages / (0.10 × MESSAGES_PER_FLIT)` slots, so the fault interval
    // sits mid-run with settled windows before it and a visible recovery
    // tail after it. The shared leaf 0 → spine trunk saturates near 12% per
    // stream, so 10% leaves headroom in calm windows while the ×20 storm
    // (≈33% flit error rate) genuinely overruns it.
    let offered_load = 0.10;
    let slo = SloSpec::default();
    let mut out = Vec::new();

    // Uplink storm: one spine, every session crosses the stormed trunk.
    {
        let topology = FabricTopology::leaf_spine(2, 1, 2);
        let sessions = topology.session_count();
        let uplink = topology.trunk_between(0, 2).expect("leaf 0 uplink");
        let scenario =
            Scenario::named("uplink_storm_x20").ber_storm(fault_at, storm_len, vec![uplink], 20.0);
        let workload = FabricWorkload::symmetric(sessions, messages, 8, 0xC4A05);
        for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
            let config = FabricConfig {
                max_slots: 120_000,
                ..FabricConfig::new(variant)
            }
            .with_channel(ChannelErrorModel::random(1e-5))
            .with_seed(0xC4A0_5EED)
            .with_offered_load(offered_load);
            let replay = IncidentReplay::new(
                topology.clone(),
                config,
                scenario.clone(),
                trials,
                window_slots,
                slo,
            );
            out.push(SloMeasurement {
                label: label.to_string(),
                scenario: scenario.name.clone(),
                variant: crate::variant_name(variant),
                trials,
                sessions,
                messages_per_session: messages,
                offered_load,
                window_slots,
                report: replay.run(&workload),
            });
        }
    }

    // Spine failover: two spines, one dies mid-traffic.
    {
        let topology = FabricTopology::leaf_spine(2, 2, 2);
        let sessions = topology.session_count();
        let scenario = Scenario::named("spine_failover").switch_fail(fault_at, 2);
        let workload = FabricWorkload::symmetric(sessions, messages, 8, 0xFA11);
        for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
            let config = FabricConfig {
                max_slots: 120_000,
                ..FabricConfig::new(variant)
            }
            .with_channel(ChannelErrorModel::ideal())
            .with_seed(0xFA11_5EED)
            .with_offered_load(offered_load);
            let replay = IncidentReplay::new(
                topology.clone(),
                config,
                scenario.clone(),
                trials,
                window_slots,
                slo,
            );
            out.push(SloMeasurement {
                label: label.to_string(),
                scenario: scenario.name.clone(),
                variant: crate::variant_name(variant),
                trials,
                sessions,
                messages_per_session: messages,
                offered_load,
                window_slots,
                report: replay.run(&workload),
            });
        }
    }
    out
}

/// Renders the incident summaries as an aligned text table.
pub fn slo_table(measurements: &[SloMeasurement]) -> String {
    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            let r = &m.report;
            let score = r.score.as_ref();
            let worst_avail = r
                .stats
                .iter()
                .map(|w| w.availability)
                .fold(1.0f64, f64::min);
            let worst_p999 = r.stats.iter().map(|w| w.latency.p999).max().unwrap_or(0);
            vec![
                m.scenario.clone(),
                m.variant.to_string(),
                r.stats.len().to_string(),
                sci(score.map(|s| s.burn_during).unwrap_or(0.0)),
                sci(score.map(|s| s.burn_after).unwrap_or(0.0)),
                sci(score.map(|s| s.peak_burn).unwrap_or(0.0)),
                score
                    .and_then(|s| s.time_to_recovery_slots)
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "-".to_string()),
                format!(
                    "{}/{}",
                    score.map(|s| s.fast_alert_windows).unwrap_or(0),
                    score.map(|s| s.slow_alert_windows).unwrap_or(0)
                ),
                sci(worst_avail),
                worst_p999.to_string(),
            ]
        })
        .collect();
    render_table(
        "SLO incident replays: error-budget burn during vs after the fault",
        &[
            "scenario",
            "protocol",
            "windows",
            "burn during",
            "burn after",
            "peak burn",
            "recovery (slots)",
            "fast/slow alerts",
            "worst avail",
            "worst p99.9",
        ],
        &rows,
    )
}

/// Serialises the measurements as `BENCH_slo.json` content: one `summary`
/// row per measurement plus its full per-window `window` series.
pub fn slo_json(measurements: &[SloMeasurement]) -> String {
    let mut rows: Vec<String> = Vec::new();
    for m in measurements {
        let r = &m.report;
        let slo = &r.slo;
        let mut summary = JsonRow::new()
            .str("kind", "summary")
            .str("label", &m.label)
            .str("scenario", &m.scenario)
            .str("protocol", m.variant)
            .raw("trials", m.trials)
            .raw("sessions", m.sessions)
            .raw("messages_per_session", m.messages_per_session)
            .num("offered_load", m.offered_load, 2)
            .raw("window_slots", m.window_slots)
            .raw("windows", r.stats.len())
            .raw("latency_threshold_slots", slo.latency_threshold_slots)
            .num("latency_objective", slo.latency_objective, 4)
            .num("availability_objective", slo.availability_objective, 4)
            .num("availability_mean", r.aggregate.availability_mean(), 6)
            .raw(
                "warmup_window",
                r.warmup_window.map(|w| w as i64).unwrap_or(-1),
            );
        if let Some(s) = &r.score {
            summary = summary
                .raw("incident_start", s.incident_start)
                .raw("incident_end", s.incident_end)
                .num("burn_during", s.burn_during, 3)
                .num("burn_after", s.burn_after, 3)
                .num("peak_burn", s.peak_burn, 3)
                .raw(
                    "time_to_recovery_slots",
                    s.time_to_recovery_slots.map(|t| t as i64).unwrap_or(-1),
                )
                .raw("fast_alert_windows", s.fast_alert_windows)
                .raw("slow_alert_windows", s.slow_alert_windows);
        }
        rows.push(summary.finish());
        for (w, b) in r.stats.iter().zip(&r.burn) {
            rows.push(
                JsonRow::new()
                    .str("kind", "window")
                    .str("label", &m.label)
                    .str("scenario", &m.scenario)
                    .str("protocol", m.variant)
                    .raw("index", w.index)
                    .raw("start_slot", w.start_slot)
                    .raw("injected", w.injected)
                    .raw("deliveries", w.deliveries)
                    .raw("clean", w.clean)
                    .num("availability", w.availability, 6)
                    .raw("p50", w.latency.p50)
                    .raw("p99", w.latency.p99)
                    .raw("p999", w.latency.p999)
                    .raw("retransmits", w.retransmits)
                    .raw("credit_stalls", w.credit_stalls)
                    .raw("fail_orders", w.fail_orders)
                    .num("latency_burn", b.latency_burn, 3)
                    .num("availability_burn", b.availability_burn, 3)
                    .num("burn", b.burn, 3)
                    .raw("fast_alert", b.fast_alert)
                    .raw("slow_alert", b.slow_alert)
                    .finish(),
            );
        }
    }
    JsonDocument::new("slo_replay").rows(rows)
}

/// Writes the JSON form to `BENCH_slo.json` in `out` (the repo root when
/// `None`) and returns the path written.
pub fn write_slo_json(
    measurements: &[SloMeasurement],
    out: Option<&std::path::Path>,
) -> std::path::PathBuf {
    crate::json::write_artifact("BENCH_slo.json", out, &slo_json(measurements))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_replay_runs_and_serialises() {
        let ms = run_slo_replay(true, "test");
        assert_eq!(ms.len(), 4, "storm + failover, × 2 variants");
        for m in &ms {
            assert!(
                m.report.stats.len() > 1,
                "{}: paced arrivals spread over windows",
                m.scenario
            );
            assert_eq!(m.report.stats.len(), m.report.burn.len());
            let score = m.report.score.as_ref().expect("both scenarios have events");
            assert_eq!(score.incident_start, 150);
            // Paced injection puts arrivals in more than the first window.
            let windows_with_arrivals = m.report.stats.iter().filter(|w| w.injected > 0).count();
            assert!(windows_with_arrivals > 1, "{}", m.scenario);
        }
        let table = slo_table(&ms);
        assert!(table.contains("SLO incident replays"));
        let json = slo_json(&ms);
        assert!(json.contains("\"bench\": \"slo_replay\""));
        assert!(json.contains("\"kind\": \"summary\""));
        assert!(json.contains("\"kind\": \"window\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
