//! Spatial congestion attribution: per-link heatmaps, bottleneck ranking,
//! and the engine self-profiler.
//!
//! Runs the incast load sweep on the leaf–spine pod with a metrics probe on
//! every trial and prints per-rung bottleneck attribution (which link is
//! saturated, how hard, and with what congestion signature), the knee
//! sentence naming the saturated uplink, and the engine's per-phase
//! self-profile.
//!
//! Usage:
//! ```text
//! cargo run -p rxl-bench --bin fabric_hotspots --release -- \
//!     [--json] [--small] [--label NAME] [--out DIR]
//! ```
//!
//! * `--small` shrinks the sweep to a CI-sized smoke run.
//! * `--json` writes link / attribution / heat / profile rows to
//!   `BENCH_hotspots.json` at the repository root (override the directory
//!   with `--out DIR`; schema: see [`rxl_bench::hotspots_json`]).
//! * `--label NAME` tags the rows.

fn main() {
    let mut json = false;
    let mut small = false;
    let mut out: Option<std::path::PathBuf> = None;
    let mut label = String::from("current");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--small" => small = true,
            "--out" => {
                out = Some(std::path::PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a value");
                    std::process::exit(2);
                })))
            }
            "--label" => {
                label = args.next().unwrap_or_else(|| {
                    eprintln!("--label requires a value");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let report = rxl_bench::run_hotspots(small, &label);
    println!("{}", rxl_bench::hotspots_table(&report));
    if json {
        println!(
            "wrote {}",
            rxl_bench::write_hotspots_json(&report, out.as_deref()).display()
        );
    }
}
