//! Regenerates the Section 5 buffering-cost comparison that justifies ISN's
//! go-back-N-only design.
fn main() {
    println!("{}", rxl_bench::buffering_table());
}
