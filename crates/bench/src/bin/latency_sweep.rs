//! Latency vs offered load on the canonical leaf–spine pod.
//!
//! Paces open-loop traffic through the `rxl-load` subsystem across an
//! offered-load ladder for both protocols and prints one row per ladder
//! point (latency percentiles in flit slots, delivered throughput,
//! detected saturation knee).
//!
//! Usage:
//! ```text
//! cargo run -p rxl-bench --bin latency_sweep --release -- \
//!     [--json] [--small] [--label NAME]
//! ```
//!
//! * `--small` shrinks the ladder to a CI-sized smoke run.
//! * `--json` writes the rows to `BENCH_latency.json` in the current
//!   directory (schema: see [`rxl_bench::latency_json`]).
//! * `--label NAME` tags the rows.

fn main() {
    let mut json = false;
    let mut small = false;
    let mut label = String::from("current");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--small" => small = true,
            "--label" => {
                label = args.next().unwrap_or_else(|| {
                    eprintln!("--label requires a value");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let rows = rxl_bench::run_latency_sweep(small, &label);
    println!("{}", rxl_bench::latency_table(&rows));
    if json {
        println!("wrote {}", rxl_bench::write_latency_json(&rows));
    }
}
