//! Regenerates the Fig. 6c trace: RXL detecting the dropped flit on the very
//! next arrival via the ISN ECRC.
fn main() {
    let out = rxl_bench::fig6_isn_scenario();
    println!("{}", out.trace);
}
