//! Regenerates the Section 7.2 bandwidth-loss analysis (Eqns (11)–(14)).
fn main() {
    println!("{}", rxl_bench::bandwidth_table());
}
