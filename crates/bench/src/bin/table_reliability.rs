//! Regenerates the Section 7.1 reliability analysis (Eqns (1)–(10)).
fn main() {
    println!("{}", rxl_bench::reliability_table());
}
