//! Regenerates the Section 7.3 ISN hardware-overhead table.
fn main() {
    println!("{}", rxl_bench::hw_overhead_table());
}
