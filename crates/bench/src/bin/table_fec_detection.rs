//! Regenerates the Section 2.5 FEC burst-detection fractions by measuring the
//! real shortened Reed–Solomon decoder.
fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000);
    println!("{}", rxl_bench::fec_detection_table(trials));
}
