//! Fabric-scale Monte-Carlo cross-check of the analytic FIT projection.
//!
//! Usage:
//! ```text
//! cargo run -p rxl-bench --bin fabric_fit_crosscheck --release -- \
//!     [--json] [--out DIR] [devices] [levels] [ber] [trials] [messages]
//! ```
//!
//! `--json` additionally writes machine-readable results to
//! `BENCH_fabric.json` at the repository root (override the directory with
//! `--out DIR`).

use rxl_core::FabricSimOptions;

fn main() {
    let mut json = false;
    let mut out: Option<std::path::PathBuf> = None;
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            json = true;
        } else if arg == "--out" {
            out = Some(std::path::PathBuf::from(args.next().unwrap_or_else(|| {
                eprintln!("--out requires a value");
                std::process::exit(2);
            })));
        } else {
            positional.push(arg);
        }
    }
    let number = |idx: usize, default: f64| -> f64 {
        positional
            .get(idx)
            .and_then(|a| a.parse().ok())
            .unwrap_or(default)
    };
    let devices = number(0, 16_384.0) as u64;
    let levels = number(1, 2.0) as u32;
    let opts = FabricSimOptions {
        ber: number(2, 1e-4),
        trials: number(3, 8.0) as u64,
        messages_per_session: number(4, 600.0) as usize,
        ..FabricSimOptions::default()
    };

    let rows = rxl_bench::run_fabric_crosscheck(devices, levels, &opts);
    println!("{}", rxl_bench::fabric_crosscheck_table(&rows, &opts));
    if json {
        println!(
            "wrote {}",
            rxl_bench::write_fabric_json(&rows, &opts, out.as_deref()).display()
        );
    }
}
