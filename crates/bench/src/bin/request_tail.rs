//! Request-scale serving mode: fanout tail amplification and the
//! operating-point recommendation.
//!
//! Runs the open-system request sweep twice: a uniform fanout ladder at a
//! fixed per-message load (request p99 vs fanout `k`, CXL vs RXL) and the
//! incast operating-point ladder on the shallow leaf–spine pod (max safe
//! offered load under the request SLO, binding bottleneck link).
//!
//! Usage:
//! ```text
//! cargo run -p rxl-bench --bin request_tail --release -- \
//!     [--json] [--small] [--label NAME] [--out DIR] [--spans FILE]
//! ```
//!
//! * `--small` shrinks the ladders to a CI-sized smoke run.
//! * `--json` writes the rows to `BENCH_requests.json` at the repository
//!   root (override the directory with `--out DIR`) (schema: see
//!   [`rxl_bench::requests_json`]).
//! * `--spans FILE` additionally writes the binding rung's per-shard span
//!   trace as JSONL (with its dropped-span meta line).
//! * `--label NAME` tags the rows.

fn main() {
    let mut json = false;
    let mut small = false;
    let mut out: Option<std::path::PathBuf> = None;
    let mut spans: Option<std::path::PathBuf> = None;
    let mut label = String::from("current");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--small" => small = true,
            "--out" => {
                out = Some(std::path::PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a value");
                    std::process::exit(2);
                })))
            }
            "--spans" => {
                spans = Some(std::path::PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--spans requires a value");
                    std::process::exit(2);
                })))
            }
            "--label" => {
                label = args.next().unwrap_or_else(|| {
                    eprintln!("--label requires a value");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let report = rxl_bench::run_requests(small, &label);
    println!("{}", rxl_bench::requests_table(&report));
    println!(
        "span trace: {} spans retained, {} dropped",
        report.trace_spans, report.dropped_spans
    );
    if let Some(path) = spans {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
        }
        std::fs::write(&path, &report.trace_jsonl)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("wrote {}", path.display());
    }
    if json {
        println!(
            "wrote {}",
            rxl_bench::write_requests_json(&report, out.as_deref()).display()
        );
    }
}
