//! Regenerates every table and figure of the paper's evaluation in one run.
//! The output of this binary is the basis of EXPERIMENTS.md.
//!
//! Pass `--json` to additionally write the fabric cross-check results to
//! `BENCH_fabric.json` at the repository root (the machine-readable perf
//! trajectory seed); `--out DIR` redirects the artifact directory.

use rxl_core::FabricSimOptions;

fn main() {
    let mut json = false;
    let mut out: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--out" => {
                out = Some(std::path::PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a value");
                    std::process::exit(2);
                })))
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    println!("{}", rxl_bench::reliability_table());
    println!("{}", rxl_bench::fig8_table(4));
    println!("{}", rxl_bench::bandwidth_table());
    println!("{}", rxl_bench::buffering_table());
    println!("{}", rxl_bench::hw_overhead_table());
    println!("{}", rxl_bench::header_overhead_table());
    println!("{}", rxl_bench::crc_detection_table());
    println!("{}", rxl_bench::fec_detection_table(2_000));
    println!("--- Fig. 4 scenario (baseline CXL) ---");
    println!("{}", rxl_bench::fig4_scenario().trace);
    println!("--- Fig. 5b scenario (baseline CXL, same-CQID data) ---");
    println!("{}", rxl_bench::fig5b_scenario().trace);
    println!("--- Fig. 6c scenario (RXL / ISN) ---");
    println!("{}", rxl_bench::fig6_isn_scenario().trace);
    println!("{}", rxl_bench::sim_crosscheck_table(2e-4, 8, 2_000));

    let opts = FabricSimOptions::default();
    let rows = rxl_bench::run_fabric_crosscheck(16_384, 2, &opts);
    println!("{}", rxl_bench::fabric_crosscheck_table(&rows, &opts));
    if json {
        println!(
            "wrote {}",
            rxl_bench::write_fabric_json(&rows, &opts, out.as_deref()).display()
        );
    }

    // Engine wall-clock throughput, CI-sized. The committed performance
    // trajectory (`BENCH_throughput.json`) is produced by the dedicated
    // `fabric_throughput` binary on the large workloads.
    println!(
        "{}",
        rxl_bench::throughput_table(&rxl_bench::run_throughput(true, "run_all"))
    );

    // Fault-injection scenarios, CI-sized. The committed trajectory
    // (`BENCH_chaos.json`) is produced by the dedicated `chaos_sweep`
    // binary on the full sweep.
    println!(
        "{}",
        rxl_bench::chaos_table(&rxl_bench::run_chaos_sweep(true, "run_all"))
    );

    // Latency vs offered load, CI-sized. The committed trajectory
    // (`BENCH_latency.json`) is produced by the dedicated `latency_sweep`
    // binary on the full ladder.
    println!(
        "{}",
        rxl_bench::latency_table(&rxl_bench::run_latency_sweep(true, "run_all"))
    );

    // Spatial congestion attribution, CI-sized. The committed trajectory
    // (`BENCH_hotspots.json`) is produced by the dedicated `fabric_hotspots`
    // binary on the full ladder.
    println!(
        "{}",
        rxl_bench::hotspots_table(&rxl_bench::run_hotspots(true, "run_all"))
    );

    // Request-scale serving mode, CI-sized. The committed trajectory
    // (`BENCH_requests.json`) is produced by the dedicated `request_tail`
    // binary on the full fanout ladder.
    println!(
        "{}",
        rxl_bench::requests_table(&rxl_bench::run_requests(true, "run_all"))
    );
}
