//! SLO incident replays: chaos scenarios scored as error-budget burn.
//!
//! Replays the chaos sweep's uplink BER storm and spine failover with paced
//! injection and a per-trial `SloProbe`, then prints each incident's burn
//! scorecard: burn during vs after the fault, peak burn, time to recovery,
//! and how many windows the fast/slow multi-window burn-rate alerts covered.
//!
//! Usage:
//! ```text
//! cargo run -p rxl-bench --bin slo_replay --release -- \
//!     [--json] [--small] [--label NAME] [--out DIR]
//! ```
//!
//! * `--small` shrinks the replays to a CI-sized smoke run.
//! * `--json` writes summary + per-window rows to `BENCH_slo.json` at the
//!   repository root (override the directory with `--out DIR`) (schema: see [`rxl_bench::slo_json`]).
//! * `--label NAME` tags the rows.

fn main() {
    let mut json = false;
    let mut small = false;
    let mut out: Option<std::path::PathBuf> = None;
    let mut label = String::from("current");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--small" => small = true,
            "--out" => {
                out = Some(std::path::PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a value");
                    std::process::exit(2);
                })))
            }
            "--label" => {
                label = args.next().unwrap_or_else(|| {
                    eprintln!("--label requires a value");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let measurements = rxl_bench::run_slo_replay(small, &label);
    println!("{}", rxl_bench::slo_table(&measurements));
    if json {
        println!(
            "wrote {}",
            rxl_bench::write_slo_json(&measurements, out.as_deref()).display()
        );
    }
}
