//! Regenerates Fig. 8: FIT_device of CXL and RXL versus switching levels.
fn main() {
    let max_levels: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    println!("{}", rxl_bench::fig8_table(max_levels));
}
