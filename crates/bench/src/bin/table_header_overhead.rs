//! Regenerates the Section 2.4 header-overhead comparison (Fig. 2 context).
fn main() {
    println!("{}", rxl_bench::header_overhead_table());
}
