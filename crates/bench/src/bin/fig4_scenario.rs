//! Regenerates the Fig. 4 trace: baseline CXL forwarding a flit it could not
//! sequence-check after a silent drop.
fn main() {
    let out = rxl_bench::fig4_scenario();
    println!("{}", out.trace);
}
