//! Regenerates the Fig. 5a (duplicate request) and Fig. 5b (out-of-order
//! data) transaction-layer failure traces.
fn main() {
    let a = rxl_bench::fig5a_scenario();
    println!("--- Fig. 5a: duplicated request ---\n{}", a.trace);
    let b = rxl_bench::fig5b_scenario();
    println!(
        "--- Fig. 5b: out-of-order data within one CQID ---\n{}",
        b.trace
    );
}
