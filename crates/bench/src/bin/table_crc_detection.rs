//! Regenerates the Section 4.1 CRC detection-capability claims.
fn main() {
    println!("{}", rxl_bench::crc_detection_table());
}
