//! Accelerated-BER Monte-Carlo cross-check of the analytic failure model:
//! CXL (piggybacked ACKs) versus RXL through one switch level.
fn main() {
    let ber: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2e-4);
    let trials: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let messages: usize = std::env::args()
        .nth(3)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000);
    println!("{}", rxl_bench::sim_crosscheck_table(ber, trials, messages));
}
