//! Chaos scenario sweep: BER storms and spine failover, CXL vs RXL.
//!
//! Runs the `rxl-chaos` scenario Monte-Carlo over a leaf–spine pod — a BER
//! storm of several accelerations on one uplink, plus a spine failure — and
//! tabulates per-epoch `Fail_order` counts, availability, and
//! time-to-first-failure for both protocol variants.
//!
//! Usage:
//! ```text
//! cargo run -p rxl-bench --bin chaos_sweep --release -- \
//!     [--json] [--small] [--label NAME] [--out DIR]
//! ```
//!
//! * `--small` shrinks the sweep to a CI-sized smoke run.
//! * `--json` writes the rows to `BENCH_chaos.json` at the
//!   repository root (override the directory with `--out DIR`) (schema: see [`rxl_bench::chaos_json`]).
//! * `--label NAME` tags the rows.

fn main() {
    let mut json = false;
    let mut small = false;
    let mut out: Option<std::path::PathBuf> = None;
    let mut label = String::from("current");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--small" => small = true,
            "--out" => {
                out = Some(std::path::PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a value");
                    std::process::exit(2);
                })))
            }
            "--label" => {
                label = args.next().unwrap_or_else(|| {
                    eprintln!("--label requires a value");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let rows = rxl_bench::run_chaos_sweep(small, &label);
    println!("{}", rxl_bench::chaos_table(&rows));
    if json {
        println!(
            "wrote {}",
            rxl_bench::write_chaos_json(&rows, out.as_deref()).display()
        );
    }
}
