//! Wall-clock throughput of the fabric flit-slot engine.
//!
//! Drives the `rxl-fabric` discrete-event simulator over a large leaf–spine
//! pod and a ring at the paper's real (low-BER) operating point and reports
//! how many flits the engine pushes per second of *wall clock* — the number
//! every hot-path optimisation in this repository is accountable to.
//!
//! Usage:
//! ```text
//! cargo run -p rxl-bench --bin fabric_throughput --release -- \
//!     [--json] [--small] [--label NAME] [--out DIR]
//! ```
//!
//! * `--small` shrinks the workload to a CI-sized smoke run.
//! * `--json` writes the rows to `BENCH_throughput.json` at the
//!   repository root (override the directory with `--out DIR`) (schema: see [`rxl_bench::throughput_json`]).
//! * `--label NAME` tags the rows (used to distinguish `before`/`after`
//!   snapshots in the committed trajectory file).

fn main() {
    let mut json = false;
    let mut small = false;
    let mut out: Option<std::path::PathBuf> = None;
    let mut label = String::from("current");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--small" => small = true,
            "--out" => {
                out = Some(std::path::PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a value");
                    std::process::exit(2);
                })))
            }
            "--label" => {
                label = args.next().unwrap_or_else(|| {
                    eprintln!("--label requires a value");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let rows = rxl_bench::run_throughput(small, &label);
    println!("{}", rxl_bench::throughput_table(&rows));
    if json {
        println!(
            "wrote {}",
            rxl_bench::write_throughput_json(&rows, out.as_deref()).display()
        );
    }
}
