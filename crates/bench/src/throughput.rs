//! Wall-clock throughput measurement of the fabric flit-slot engine.
//!
//! `fabric_throughput` times [`FabricMonteCarlo`] runs over a large
//! leaf–spine pod and a ring at the paper's real (low-BER) operating point
//! and reports flits per second of wall clock, in two flavours:
//!
//! * **payload flits/s** — first-transmission protocol flits injected by the
//!   endpoints (`LinkStats::flits_sent`), the application-visible rate;
//! * **hop flits/s** — flits presented at switch ingress pipelines
//!   (`SwitchStats::flits_in`), the per-hop work rate that the FEC/CRC
//!   hot-path optimisations act on directly.
//!
//! The machine-readable JSON form (`BENCH_throughput.json`) is the
//! repository's performance trajectory for the engine: committed snapshots
//! carry `before`/`after` labelled rows so speedups (and regressions) across
//! PRs stay visible.

use std::time::Instant;

use rxl_fabric::{FabricConfig, FabricMonteCarlo, FabricTopology, FabricWorkload};
use rxl_link::{ChannelErrorModel, ProtocolVariant};

use crate::json::{JsonDocument, JsonRow};
use crate::{render_table, sci};

/// One timed throughput measurement.
#[derive(Clone, Debug)]
pub struct ThroughputRow {
    /// Snapshot label (`before` / `after` / `current`).
    pub label: String,
    /// Topology name.
    pub topology: String,
    /// Protocol variant simulated.
    pub variant: &'static str,
    /// Concurrent sessions in the fabric.
    pub sessions: usize,
    /// Messages per session per direction.
    pub messages_per_session: usize,
    /// Monte-Carlo trials timed.
    pub trials: u64,
    /// Virtual channels per link the workload ran with.
    pub vc_count: usize,
    /// First-transmission payload flits across all trials.
    pub payload_flits: u64,
    /// Flits presented at switch ingress pipelines across all trials.
    pub hop_flits: u64,
    /// Wall-clock seconds for the whole measurement.
    pub wall_s: f64,
    /// `payload_flits / wall_s`.
    pub payload_flits_per_sec: f64,
    /// `hop_flits / wall_s`.
    pub hop_flits_per_sec: f64,
}

struct Workload {
    name: &'static str,
    topology: FabricTopology,
    messages: usize,
    trials: u64,
    vc_count: usize,
    /// Channel bit-error rate (`0.0` = ideal channel). The quiet-link
    /// workloads run at the paper's real low-BER operating point so the
    /// geometric skip-ahead sampler's "quiet links cost zero RNG draws"
    /// claim is timed on a realistic error process, not just on ideal wires.
    ber: f64,
}

fn workloads(small: bool) -> Vec<Workload> {
    if small {
        vec![
            Workload {
                name: "leaf_spine_small",
                topology: FabricTopology::leaf_spine(2, 1, 2),
                messages: 120,
                trials: 1,
                vc_count: 1,
                ber: 0.0,
            },
            Workload {
                name: "leaf_spine_small_ber1e6",
                topology: FabricTopology::leaf_spine(2, 1, 2),
                messages: 120,
                trials: 1,
                vc_count: 1,
                ber: 1e-6,
            },
            Workload {
                name: "ring_small",
                topology: FabricTopology::ring(3, 1, 1),
                messages: 120,
                trials: 1,
                vc_count: 1,
                ber: 0.0,
            },
            Workload {
                name: "ring_span2_small",
                topology: FabricTopology::ring(6, 1, 2),
                messages: 120,
                trials: 1,
                vc_count: 2,
                ber: 0.0,
            },
        ]
    } else {
        vec![
            Workload {
                name: "leaf_spine_large",
                topology: FabricTopology::leaf_spine(4, 2, 4),
                messages: 15_000,
                trials: 2,
                vc_count: 1,
                ber: 0.0,
            },
            // The quiet-link row: same pod at BER 1e-6, where almost every
            // traversal is error-free. Under per-traversal sampling this
            // costs one RNG draw per flit per link; under skip-ahead it
            // costs one draw per (rare) error event.
            Workload {
                name: "leaf_spine_large_ber1e6",
                topology: FabricTopology::leaf_spine(4, 2, 4),
                messages: 15_000,
                trials: 2,
                vc_count: 1,
                ber: 1e-6,
            },
            Workload {
                name: "ring_large",
                topology: FabricTopology::ring(8, 2, 1),
                messages: 15_000,
                trials: 2,
                vc_count: 1,
                ber: 0.0,
            },
            // Ring span 2: multi-hop trunk routes form the cyclic
            // credit-wait the dateline escape VCs break, so this workload
            // runs at `vc_count = 2` and times the VC arbitration/credit
            // path under real wrap-around pressure.
            Workload {
                name: "ring_span2_large",
                topology: FabricTopology::ring(8, 2, 2),
                messages: 15_000,
                trials: 2,
                vc_count: 2,
                ber: 0.0,
            },
        ]
    }
}

/// Runs the throughput suite (both topologies × CXL and RXL) and returns the
/// timed rows. `small` selects the CI-sized smoke configuration.
pub fn run_throughput(small: bool, label: &str) -> Vec<ThroughputRow> {
    let mut rows = Vec::new();
    for w in workloads(small) {
        let sessions = w.topology.session_count();
        let workload = FabricWorkload::symmetric(sessions, w.messages, 8, 0x7E57);
        for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
            // Ideal workloads measure raw engine speed; the `ber1e6`
            // quiet-link workloads time the geometric skip-ahead sampler at
            // the paper's real operating point, where clean flits skip both
            // the RNG and the switch decode/re-encode pipeline. (Higher BERs
            // are avoided here: baseline CXL can wedge in its documented
            // stale-NACK livelock, which would time the stall guard, not the
            // hot path.)
            let channel = if w.ber > 0.0 {
                ChannelErrorModel::random(w.ber)
            } else {
                ChannelErrorModel::ideal()
            };
            let config = FabricConfig::new(variant)
                .with_channel(channel)
                .with_seed(0xBEEF)
                .with_vc_count(w.vc_count);
            let mc = FabricMonteCarlo::new(w.topology.clone(), config, w.trials);
            let start = Instant::now();
            let report = mc.run(&workload);
            let wall_s = start.elapsed().as_secs_f64();
            assert_eq!(
                report.drained_trials, report.trials,
                "{} {variant:?}: throughput workload must drain",
                w.name
            );
            let payload = report.links.flits_sent;
            let hops = report.switches.flits_in;
            rows.push(ThroughputRow {
                label: label.to_string(),
                topology: w.name.to_string(),
                variant: crate::variant_name(variant),
                sessions,
                messages_per_session: w.messages,
                trials: w.trials,
                vc_count: w.vc_count,
                payload_flits: payload,
                hop_flits: hops,
                wall_s,
                payload_flits_per_sec: payload as f64 / wall_s,
                hop_flits_per_sec: hops as f64 / wall_s,
            });
        }
    }
    rows
}

/// Renders the rows as an aligned text table.
pub fn throughput_table(rows: &[ThroughputRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.topology.clone(),
                r.variant.to_string(),
                r.sessions.to_string(),
                r.vc_count.to_string(),
                r.payload_flits.to_string(),
                r.hop_flits.to_string(),
                format!("{:.3}", r.wall_s),
                sci(r.payload_flits_per_sec),
                sci(r.hop_flits_per_sec),
            ]
        })
        .collect();
    render_table(
        "Fabric engine wall-clock throughput",
        &[
            "label",
            "workload",
            "protocol",
            "sessions",
            "vcs",
            "payload flits",
            "hop flits",
            "wall s",
            "payload flits/s",
            "hop flits/s",
        ],
        &table_rows,
    )
}

/// Serialises the rows as a JSON document (hand-rolled — the build container
/// has no serde) for `BENCH_throughput.json`.
pub fn throughput_json(rows: &[ThroughputRow]) -> String {
    JsonDocument::new("fabric_throughput").rows(rows.iter().map(|r| {
        JsonRow::new()
            .str("label", &r.label)
            .str("workload", &r.topology)
            .str("protocol", r.variant)
            .raw("sessions", r.sessions)
            .raw("messages_per_session", r.messages_per_session)
            .raw("trials", r.trials)
            .raw("vc_count", r.vc_count)
            .raw("payload_flits", r.payload_flits)
            .raw("hop_flits", r.hop_flits)
            .num("wall_s", r.wall_s, 6)
            .num("payload_flits_per_sec", r.payload_flits_per_sec, 1)
            .num("hop_flits_per_sec", r.hop_flits_per_sec, 1)
            .finish()
    }))
}

/// Writes the JSON form to `BENCH_throughput.json` in `out` (the repo root
/// when `None`) and returns the path written.
pub fn write_throughput_json(
    rows: &[ThroughputRow],
    out: Option<&std::path::Path>,
) -> std::path::PathBuf {
    crate::json::write_artifact("BENCH_throughput.json", out, &throughput_json(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_runs_and_serialises() {
        let rows = run_throughput(true, "test");
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.payload_flits > 0);
            assert!(r.hop_flits > 0);
            assert!(r.wall_s > 0.0);
        }
        assert!(
            rows.iter()
                .any(|r| r.topology == "ring_span2_small" && r.vc_count == 2),
            "the span-2 ring must run under escape VCs"
        );
        assert!(
            rows.iter().any(|r| r.topology == "leaf_spine_small_ber1e6"),
            "the quiet-link (BER 1e-6) workload must run"
        );
        let table = throughput_table(&rows);
        assert!(table.contains("Fabric engine wall-clock throughput"));
        let json = throughput_json(&rows);
        assert!(json.contains("\"bench\": \"fabric_throughput\""));
        assert!(json.contains("\"label\": \"test\""));
        assert!(json.contains("\"vc_count\": 2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
