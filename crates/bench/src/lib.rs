//! # rxl-bench — experiment harness
//!
//! One function per table or figure of the paper's evaluation, each
//! returning a formatted text table that places the paper's reported value,
//! this reproduction's analytic model, and (where meaningful) a Monte-Carlo
//! simulation measurement side by side. The binaries under `src/bin/` are
//! thin wrappers that print these tables; `cargo run -p rxl-bench --bin
//! run_all --release` regenerates every experiment at once (that output is
//! the basis of `EXPERIMENTS.md`).
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table_reliability` | Eqns (1)–(10), Sections 7.1.1–7.1.3 |
//! | `fig8_fit_vs_levels` | Fig. 8 |
//! | `table_bandwidth` | Eqns (11)–(14), Section 7.2 |
//! | `table_hw_overhead` | Section 7.3 |
//! | `table_fec_detection` | Section 2.5 detection fractions |
//! | `table_crc_detection` | Section 4.1 CRC claims |
//! | `table_header_overhead` | Section 2.4 / Fig. 2 comparison |
//! | `fig4_scenario` | Fig. 4 link-layer failure trace |
//! | `fig5_scenarios` | Fig. 5a/5b transaction-layer failure traces |
//! | `fig6_isn_scenario` | Fig. 6c ISN drop-detection trace |
//! | `sim_crosscheck` | accelerated-BER simulation vs. analytic model |
//! | `fabric_fit_crosscheck` | fabric-scale Monte-Carlo vs. `FabricSpec` projection |
//! | `fabric_throughput` | engine wall-clock flits/sec (perf trajectory) |
//! | `chaos_sweep` | fault-injection scenarios: BER storms, spine failover |
//! | `latency_sweep` | latency vs offered load, saturation knee |
//! | `slo_replay` | chaos incidents scored as SLO burn (windowed telemetry) |
//! | `fabric_hotspots` | spatial congestion attribution: per-link heatmaps, bottleneck ranking, engine self-profile |
//! | `request_tail` | open-system serving mode: request tail amplification vs fanout, operating-point recommendation |
//!
//! `run_all` and `fabric_fit_crosscheck` accept `--json` to additionally
//! write machine-readable results to `BENCH_fabric.json`;
//! `fabric_throughput --json` writes `BENCH_throughput.json`;
//! `chaos_sweep --json` writes `BENCH_chaos.json`;
//! `latency_sweep --json` writes `BENCH_latency.json`;
//! `slo_replay --json` writes `BENCH_slo.json`;
//! `fabric_hotspots --json` writes `BENCH_hotspots.json`;
//! `request_tail --json` writes `BENCH_requests.json`.
//! Artifacts land at the repository root regardless of the invoking working
//! directory; every bin takes `--out DIR` to redirect them.

pub mod chaos;
pub mod fabriccheck;
pub mod hotspots;
pub mod json;
pub mod latency;
pub mod requests;
pub mod scenarios;
pub mod simcheck;
pub mod slo;
pub mod tables;
pub mod throughput;

pub use chaos::{chaos_json, chaos_table, run_chaos_sweep, write_chaos_json, ChaosRow};
pub use fabriccheck::{
    fabric_crosscheck_json, fabric_crosscheck_table, run_fabric_crosscheck, write_fabric_json,
};
pub use hotspots::{
    hotspots_json, hotspots_table, run_hotspots, write_hotspots_json, HotspotsReport,
};
pub use latency::{latency_json, latency_table, run_latency_sweep, write_latency_json, LatencyRow};
pub use requests::{
    requests_json, requests_table, run_requests, write_requests_json, FanoutRow, RequestsReport,
};
pub use scenarios::{fig4_scenario, fig5a_scenario, fig5b_scenario, fig6_isn_scenario};
pub use simcheck::sim_crosscheck_table;
pub use slo::{run_slo_replay, slo_json, slo_table, write_slo_json, SloMeasurement};
pub use tables::{
    bandwidth_table, buffering_table, crc_detection_table, fec_detection_table, fig8_table,
    header_overhead_table, hw_overhead_table, reliability_table,
};
pub use throughput::{
    run_throughput, throughput_json, throughput_table, write_throughput_json, ThroughputRow,
};

/// Short protocol label for report rows, shared by every measurement
/// module (`chaos`, `throughput`, `latency`).
pub(crate) fn variant_name(variant: rxl_link::ProtocolVariant) -> &'static str {
    match variant {
        rxl_link::ProtocolVariant::Rxl => "RXL",
        _ => "CXL",
    }
}

/// Escapes a string for embedding in a JSON string literal (shared by the
/// hand-rolled `BENCH_*.json` writers; the build container has no serde).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a floating-point value in compact scientific notation.
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    if (1e-3..1e4).contains(&x.abs()) {
        format!("{x:.4}")
    } else {
        format!("{x:.2e}")
    }
}

/// Renders a simple aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:<width$}", width = widths[i]))
        .collect();
    out.push_str(&header_line.join(" | "));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 3 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        out.push_str(&line.join(" | "));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_formatting() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(0.0015), "0.0015");
        assert!(sci(1.6e-24).contains('e'));
        assert!(sci(5.4e15).contains('e'));
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let t = render_table(
            "demo",
            &["name", "value"],
            &[
                vec!["a".to_string(), "1".to_string()],
                vec!["longer".to_string(), "2".to_string()],
            ],
        );
        assert!(t.contains("== demo =="));
        assert!(t.contains("longer | 2"));
        assert!(t.lines().count() >= 4);
    }
}
