//! Monte-Carlo cross-check of the analytic model.
//!
//! The paper's failure rates are far too small to observe directly in a
//! software simulation (an ordering failure every ~3×10⁵ drops, a drop every
//! ~3×10⁴ flits). The cross-check therefore runs the full flit-level
//! simulator at an *accelerated* BER, measures drop and failure rates, and
//! compares them against the analytic model evaluated at the same accelerated
//! operating point. Agreement at the accelerated point, plus the analytic
//! model's agreement with the paper at the real operating point, closes the
//! loop.

use rxl_link::{ChannelErrorModel, ProtocolVariant};
use rxl_sim::{request_stream, response_stream, MonteCarlo, SimConfig, TrafficPattern};

use crate::{render_table, sci};

/// Result of one simulated protocol configuration.
#[derive(Clone, Debug)]
pub struct SimCheckRow {
    /// Protocol variant simulated.
    pub variant: ProtocolVariant,
    /// Switch levels on the path.
    pub levels: u32,
    /// Messages delivered cleanly across all trials.
    pub clean: u64,
    /// Ordering failures observed.
    pub ordering: u64,
    /// Duplicate deliveries observed.
    pub duplicates: u64,
    /// Data corruption / unexpected deliveries observed.
    pub data: u64,
    /// Messages lost outright.
    pub lost: u64,
    /// Flits dropped by switches across all trials.
    pub switch_drops: u64,
    /// Flits forwarded by switches across all trials.
    pub switch_forwarded: u64,
    /// Retransmissions across all trials.
    pub retransmissions: u64,
    /// First-time payload flits across all trials.
    pub payload_flits: u64,
}

impl SimCheckRow {
    /// Observed switch drop rate.
    pub fn drop_rate(&self) -> f64 {
        let total = self.switch_drops + self.switch_forwarded;
        if total == 0 {
            return 0.0;
        }
        self.switch_drops as f64 / total as f64
    }

    /// Observed per-message protocol failure rate.
    pub fn failure_rate(&self) -> f64 {
        let failures = self.ordering + self.duplicates + self.data + self.lost;
        let denom = failures + self.clean;
        if denom == 0 {
            return 0.0;
        }
        failures as f64 / denom as f64
    }
}

/// Runs the accelerated-BER cross-check for one variant and switching depth.
pub fn run_simcheck(
    variant: ProtocolVariant,
    levels: u32,
    ber: f64,
    trials: u64,
    messages: usize,
) -> SimCheckRow {
    let config = SimConfig::new(variant, levels).with_channel(ChannelErrorModel::random(ber));
    let mc = MonteCarlo::new(config, trials);
    let down = request_stream(messages, TrafficPattern::DataStream { cqids: 8 }, 77);
    let up = response_stream(messages / 2, 8, 78);
    let report = mc.run(&down, &up);
    SimCheckRow {
        variant,
        levels,
        clean: report.failures.clean_deliveries,
        ordering: report.failures.ordering_failures,
        duplicates: report.failures.duplicate_deliveries,
        data: report.failures.data_failures,
        lost: report.failures.lost_messages,
        switch_drops: report.switches.flits_dropped_uncorrectable,
        switch_forwarded: report.switches.flits_forwarded,
        retransmissions: report.links.flits_retransmitted,
        payload_flits: report.links.flits_sent,
    }
}

/// The full cross-check table: CXL (piggybacked ACKs) versus RXL through one
/// switch level at an accelerated BER.
pub fn sim_crosscheck_table(ber: f64, trials: u64, messages: usize) -> String {
    let cxl = run_simcheck(ProtocolVariant::CxlPiggyback, 1, ber, trials, messages);
    let rxl = run_simcheck(ProtocolVariant::Rxl, 1, ber, trials, messages);

    let row = |r: &SimCheckRow| {
        vec![
            r.variant.name().to_string(),
            r.clean.to_string(),
            r.ordering.to_string(),
            r.duplicates.to_string(),
            r.data.to_string(),
            r.lost.to_string(),
            sci(r.drop_rate()),
            sci(r.failure_rate()),
        ]
    };
    let mut out = render_table(
        &format!(
            "Accelerated-BER simulation cross-check (BER {ber:.0e}, 1 switch level, {trials} trials, {messages} messages/trial)"
        ),
        &[
            "protocol",
            "clean",
            "ordering fails",
            "duplicates",
            "data fails",
            "lost",
            "switch drop rate",
            "message failure rate",
        ],
        &[row(&cxl), row(&rxl)],
    );
    out.push_str(&format!(
        "\nExpected shape (paper Section 7.1): baseline CXL exhibits ordering/duplicate failures once drops occur;\nRXL retries every drop and delivers zero protocol failures. Measured: CXL {} failures, RXL {} failures.\n",
        cxl.ordering + cxl.duplicates + cxl.data + cxl.lost,
        rxl.ordering + rxl.duplicates + rxl.data + rxl.lost,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rxl_shows_zero_failures_in_the_crosscheck() {
        let row = run_simcheck(ProtocolVariant::Rxl, 1, 2e-4, 2, 200);
        assert_eq!(row.ordering + row.duplicates + row.data + row.lost, 0);
        assert!(row.clean > 0);
    }

    #[test]
    fn crosscheck_table_renders_both_protocols() {
        let t = sim_crosscheck_table(2e-4, 2, 150);
        assert!(t.contains("RXL"));
        assert!(t.contains("CXL (piggybacked ACK)"));
    }

    #[test]
    fn row_rate_helpers() {
        let row = SimCheckRow {
            variant: ProtocolVariant::Rxl,
            levels: 1,
            clean: 90,
            ordering: 5,
            duplicates: 3,
            data: 1,
            lost: 1,
            switch_drops: 10,
            switch_forwarded: 990,
            retransmissions: 12,
            payload_flits: 500,
        };
        assert!((row.drop_rate() - 0.01).abs() < 1e-12);
        assert!((row.failure_rate() - 0.1).abs() < 1e-12);
    }
}
