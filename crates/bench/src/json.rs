//! Shared hand-rolled JSON writing for the `BENCH_*.json` artifacts.
//!
//! The build container has no serde, so every bench writer emits JSON by
//! hand. This module centralises the document shape they all share —
//!
//! ```json
//! {
//!   "bench": "<name>",
//!   "<top-level field>": ...,
//!   "rows": [
//!     {"k": v, ...},
//!     {"k": v, ...}
//!   ]
//! }
//! ```
//!
//! — so the writers differ only in their field lists, and the brace/comma
//! bookkeeping (the part that historically drifts between copies) lives in
//! one place. Output is byte-compatible with the previous per-module
//! writers.

use std::fmt::Display;
use std::path::{Path, PathBuf};

/// Builder for one `rows[]` object: `{"k": v, "k2": v2}`.
#[derive(Debug, Default)]
pub struct JsonRow {
    buf: String,
}

impl JsonRow {
    /// An empty row object.
    pub fn new() -> Self {
        JsonRow {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, key: &str) {
        if self.buf.len() > 1 {
            self.buf.push_str(", ");
        }
        self.buf.push('"');
        self.buf.push_str(key);
        self.buf.push_str("\": ");
    }

    /// A string field, JSON-escaped and quoted.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&crate::json_escape(value));
        self.buf.push('"');
        self
    }

    /// A field rendered by `Display` verbatim: integers, bools, and floats
    /// whose default formatting is wanted (`20.0` → `20`).
    pub fn raw(mut self, key: &str, value: impl Display) -> Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// A float field with a fixed number of `decimals`.
    pub fn num(mut self, key: &str, value: f64, decimals: usize) -> Self {
        self.key(key);
        self.buf.push_str(&format!("{value:.decimals$}"));
        self
    }

    /// A float field in scientific notation (`{:e}`).
    pub fn sci(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        self.buf.push_str(&format!("{value:e}"));
        self
    }

    /// Closes the object.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Builder for a whole `BENCH_*.json` document.
#[derive(Debug)]
pub struct JsonDocument {
    out: String,
}

impl JsonDocument {
    /// Starts a document with its `"bench"` identifier.
    pub fn new(bench: &str) -> Self {
        JsonDocument {
            out: format!("{{\n  \"bench\": \"{bench}\",\n"),
        }
    }

    /// Adds a top-level field before the rows. Pre-format floats that need
    /// a specific notation (`format!("{:e}", ber)`).
    pub fn field(mut self, key: &str, value: impl Display) -> Self {
        self.out.push_str(&format!("  \"{key}\": {value},\n"));
        self
    }

    /// Adds the `"rows"` array (each entry a [`JsonRow::finish`] string)
    /// and closes the document.
    pub fn rows(mut self, rows: impl IntoIterator<Item = String>) -> String {
        self.out.push_str("  \"rows\": [\n");
        let rows: Vec<String> = rows.into_iter().collect();
        let last = rows.len();
        for (i, row) in rows.iter().enumerate() {
            self.out.push_str("    ");
            self.out.push_str(row);
            self.out.push_str(if i + 1 == last { "\n" } else { ",\n" });
        }
        self.out.push_str("  ]\n}\n");
        self.out
    }
}

/// The directory `BENCH_*.json` artifacts land in when no `--out` override
/// is given: the repository root, independent of the invoking working
/// directory. (Writers used to drop artifacts into the CWD, which silently
/// scattered them when bins ran from crate subdirectories.)
pub fn default_out_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// Writes an artifact named `name` into `out` (created if missing), or
/// into [`default_out_dir`] when `out` is `None`, and returns the full
/// path (shared by every `write_*_json` helper).
pub fn write_artifact(name: &str, out: Option<&Path>, content: &str) -> PathBuf {
    let dir = out.map_or_else(default_out_dir, Path::to_path_buf);
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_shape_matches_the_historical_writers() {
        let doc = JsonDocument::new("demo")
            .field("ber", format!("{:e}", 1e-4))
            .rows([
                JsonRow::new()
                    .str("name", "a\"b")
                    .raw("count", 3)
                    .num("avail", 0.5, 6)
                    .sci("rate", 2.5e-7)
                    .finish(),
                JsonRow::new()
                    .raw("flag", true)
                    .raw("factor", 20.0)
                    .finish(),
            ]);
        let expected = "{\n  \"bench\": \"demo\",\n  \"ber\": 1e-4,\n  \"rows\": [\n    \
                        {\"name\": \"a\\\"b\", \"count\": 3, \"avail\": 0.500000, \"rate\": 2.5e-7},\n    \
                        {\"flag\": true, \"factor\": 20}\n  ]\n}\n";
        assert_eq!(doc, expected);
    }

    #[test]
    fn empty_rows_still_close_the_document() {
        let doc = JsonDocument::new("empty").rows([]);
        assert!(doc.ends_with("  \"rows\": [\n  ]\n}\n"), "{doc}");
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}
