//! Deterministic reproductions of the paper's failure-scenario figures
//! (Fig. 4, Fig. 5a, Fig. 5b, Fig. 6c).
//!
//! Each function drives the real link-layer state machines through the exact
//! flit sequence of the corresponding figure and returns a textual trace plus
//! the resulting failure classification, so the figures can be regenerated
//! (and asserted on) without any randomness.

use rxl_flit::{MemOp, Message};
use rxl_link::{LinkConfig, LinkRx, LinkTx, ProtocolVariant, TxEmission};
use rxl_transport::{DeliveryAuditor, DeliveryVerdict};

/// Outcome of a deterministic scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Human-readable trace of what happened.
    pub trace: String,
    /// Messages delivered to the application layer, in order of delivery.
    pub delivered_tags: Vec<u16>,
    /// Number of duplicate deliveries observed.
    pub duplicates: u64,
    /// Number of same-CQID ordering violations observed.
    pub ordering_failures: u64,
    /// Whether the receiver detected the drop before forwarding anything
    /// out of order.
    pub drop_detected_immediately: bool,
}

fn protocol_flit(tx: &mut LinkTx, msg: Message, now: f64) -> (Box<rxl_flit::WireFlit>, u16) {
    tx.enqueue_messages([msg]);
    let emission = tx.emit(now);
    match &emission {
        TxEmission::Protocol { seq, .. } => {
            let wire = tx
                .encode_emission(&emission)
                .expect("protocol flit encodes");
            (Box::new(wire), *seq)
        }
        other => panic!("expected a protocol flit, got {other:?}"),
    }
}

fn drive_scenario(
    variant: ProtocolVariant,
    messages: [Message; 4],
    same_cqid: bool,
) -> ScenarioOutcome {
    let cfg = LinkConfig::cxl3_x16(variant);
    let mut tx = LinkTx::new(cfg);
    let mut rx = LinkRx::new(cfg);
    let mut audit = DeliveryAuditor::new();
    for m in &messages {
        audit.record_sent(m);
    }

    let mut trace = String::new();
    let mut delivered_tags = Vec::new();
    let mut verdicts: Vec<DeliveryVerdict> = Vec::new();
    let mut drop_detected_immediately = false;
    let mut now = 0.0;

    // Flit #0 carries messages[0] and is delivered normally.
    let (w0, _) = protocol_flit(&mut tx, messages[0], now);
    let r0 = rx.receive(&w0);
    for m in &r0.delivered {
        delivered_tags.push(m.tag());
        verdicts.push(audit.observe_delivery(m));
    }
    trace.push_str(&format!(
        "flit #0 [{:?}] delivered -> tag {}\n",
        variant,
        messages[0].tag()
    ));

    // Flit #1 carries messages[1] and is DROPPED by an intermediate switch.
    now += 2.0;
    let (_w1, _) = protocol_flit(&mut tx, messages[1], now);
    trace.push_str("flit #1 silently dropped by the switch\n");

    // Flit #2 carries messages[2] and piggybacks an ACK for upstream flit 100
    // (so its FSN field does not hold its own sequence number).
    now += 2.0;
    tx.queue_ack(100);
    let (w2, _) = protocol_flit(&mut tx, messages[2], now);
    let r2 = rx.receive(&w2);
    if r2.accepted {
        for m in &r2.delivered {
            delivered_tags.push(m.tag());
            verdicts.push(audit.observe_delivery(m));
        }
        trace.push_str(&format!(
            "flit #2 (ACK piggyback) ACCEPTED without a sequence check -> tag {}\n",
            messages[2].tag()
        ));
    } else {
        drop_detected_immediately = true;
        trace
            .push_str("flit #2 (ACK piggyback) REJECTED: sequence mismatch detected by the ECRC\n");
    }

    // Flit #3 carries messages[3] with its own sequence number; baseline CXL
    // finally notices the gap here and requests a go-back-N replay.
    now += 2.0;
    let (w3, _) = protocol_flit(&mut tx, messages[3], now);
    let r3 = rx.receive(&w3);
    if r3.accepted {
        for m in &r3.delivered {
            delivered_tags.push(m.tag());
            verdicts.push(audit.observe_delivery(m));
        }
        trace.push_str(&format!("flit #3 delivered -> tag {}\n", messages[3].tag()));
    } else {
        trace.push_str("flit #3 rejected; ");
    }
    let nack = r2.send_nack.or(r3.send_nack);
    if let Some(last_good) = nack {
        trace.push_str(&format!("receiver sends NACK (last good = {last_good})\n"));
        tx.handle_peer_nack(last_good, now);
        // Replay everything the transmitter still holds.
        loop {
            now += 2.0;
            let emission = tx.emit(now);
            match &emission {
                TxEmission::Protocol { .. } => {
                    let wire = tx
                        .encode_emission(&emission)
                        .expect("protocol flit encodes");
                    let r = rx.receive(&wire);
                    for m in &r.delivered {
                        delivered_tags.push(m.tag());
                        verdicts.push(audit.observe_delivery(m));
                        trace.push_str(&format!("replayed flit delivered -> tag {}\n", m.tag()));
                    }
                }
                TxEmission::Idle => break,
                _ => {}
            }
        }
    }

    let counts = audit.finalize();
    let ordering_failures = if same_cqid {
        counts.ordering_failures
    } else {
        0
    };
    trace.push_str(&format!(
        "final delivery order: {delivered_tags:?} (duplicates = {}, same-CQID ordering failures = {})\n",
        counts.duplicate_deliveries, counts.ordering_failures
    ));
    ScenarioOutcome {
        trace,
        delivered_tags,
        duplicates: counts.duplicate_deliveries,
        ordering_failures,
        drop_detected_immediately,
    }
}

/// Fig. 4 — baseline CXL fails to notice a dropped flit when the next flit
/// piggybacks an ACK; the trace shows the premature forwarding.
pub fn fig4_scenario() -> ScenarioOutcome {
    let msgs = [
        Message::request(MemOp::RdCurr, 0x000, 0, 0),
        Message::request(MemOp::RdCurr, 0x040, 1, 1),
        Message::request(MemOp::RdCurr, 0x080, 2, 2),
        Message::request(MemOp::RdCurr, 0x0C0, 3, 3),
    ];
    drive_scenario(ProtocolVariant::CxlPiggyback, msgs, false)
}

/// Fig. 5a — the duplicated-request failure: after the late detection and
/// go-back-N replay, request C is executed twice.
pub fn fig5a_scenario() -> ScenarioOutcome {
    // Requests A, B, C, D on distinct queues (duplication, not ordering, is
    // the failure here).
    fig4_scenario()
}

/// Fig. 5b — the out-of-order-data failure: data B and C share a CQID, so
/// forwarding C before B violates the in-order guarantee.
pub fn fig5b_scenario() -> ScenarioOutcome {
    let cq = 5u16;
    let msgs = [
        Message::data(cq, 0, 0, [0xA0; 8]),
        Message::data(cq, 1, 0, [0xB0; 8]),
        Message::data(cq, 2, 0, [0xC0; 8]),
        Message::data(cq, 3, 0, [0xD0; 8]),
    ];
    drive_scenario(ProtocolVariant::CxlPiggyback, msgs, true)
}

/// Fig. 6c — the same drop pattern under RXL: the very next flit fails the
/// ISN ECRC, nothing is forwarded out of order, and the replay delivers
/// everything exactly once.
pub fn fig6_isn_scenario() -> ScenarioOutcome {
    let cq = 5u16;
    let msgs = [
        Message::data(cq, 0, 0, [0xA0; 8]),
        Message::data(cq, 1, 0, [0xB0; 8]),
        Message::data(cq, 2, 0, [0xC0; 8]),
        Message::data(cq, 3, 0, [0xD0; 8]),
    ];
    drive_scenario(ProtocolVariant::Rxl, msgs, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_reproduces_the_premature_forwarding_and_duplicate() {
        let out = fig4_scenario();
        // Tag 2 (request C) is forwarded before the gap is noticed, and again
        // during the replay → exactly one duplicate.
        assert!(!out.drop_detected_immediately);
        assert_eq!(out.duplicates, 1);
        // Delivery order starts 0, 2 — the mis-forwarding — and ends with the
        // replayed 1, 2, 3.
        assert_eq!(out.delivered_tags, vec![0, 2, 1, 2, 3]);
        assert!(out.trace.contains("ACCEPTED without a sequence check"));
    }

    #[test]
    fn fig5b_reproduces_the_same_cqid_ordering_violation() {
        let out = fig5b_scenario();
        assert!(out.ordering_failures >= 1, "trace:\n{}", out.trace);
        assert_eq!(out.duplicates, 1);
    }

    #[test]
    fn fig6_rxl_detects_the_drop_immediately_and_delivers_cleanly() {
        let out = fig6_isn_scenario();
        assert!(out.drop_detected_immediately, "trace:\n{}", out.trace);
        assert_eq!(out.duplicates, 0);
        assert_eq!(out.ordering_failures, 0);
        assert_eq!(out.delivered_tags, vec![0, 1, 2, 3]);
        assert!(out.trace.contains("REJECTED"));
    }
}
