//! Table generators for the analytic experiments.

use rxl_analysis::{
    fec_model::FecDetectionModel, fit_curve, BandwidthModel, BufferingModel, HardwareCostModel,
    HeaderOverhead, ReliabilityModel,
};
use rxl_crc::analysis::CrcAnalyzer;
use rxl_crc::catalog::FLIT_CRC64;
use rxl_fec::stats::burst_experiment;
use rxl_fec::InterleavedFec;

use crate::{render_table, sci};

/// Section 7.1 — the reliability chain from BER to FIT, for CXL and RXL in
/// direct and single-level-switched configurations (Eqns (1)–(10)).
pub fn reliability_table() -> String {
    let m = ReliabilityModel::cxl3_x16();
    let rows = vec![
        vec![
            "Eqn (1)  FER (raw flit error rate)".to_string(),
            "2.0e-3".to_string(),
            sci(m.fer()),
        ],
        vec![
            "Eqn (2)  FER_UC (post-FEC uncorrectable)".to_string(),
            "3.0e-5".to_string(),
            sci(m.fer_uncorrectable()),
        ],
        vec![
            "Eqn (3)  FEC correction fraction".to_string(),
            "> 98.5%".to_string(),
            format!("{:.2}%", m.fec_correction_fraction() * 100.0),
        ],
        vec![
            "Eqn (4)  FER_UD, CXL direct".to_string(),
            "1.6e-24".to_string(),
            sci(m.fer_undetected_direct()),
        ],
        vec![
            "Eqn (5)  FIT_device, CXL direct".to_string(),
            "2.9e-3".to_string(),
            sci(m.fit_cxl_direct()),
        ],
        vec![
            "Eqn (6)  FER_drop, 1-level switch".to_string(),
            "3.0e-5".to_string(),
            sci(m.fer_drop_single_switch()),
        ],
        vec![
            "Eqn (7)  FER_order, CXL 1-level switch (p_coal = 0.1)".to_string(),
            "3.0e-6".to_string(),
            sci(m.fer_order_single_switch()),
        ],
        vec![
            "Eqn (8)  FIT_device, CXL 1-level switch".to_string(),
            "5.4e15".to_string(),
            sci(m.fit_cxl_single_switch()),
        ],
        vec![
            "Eqn (9)  FER_UD, RXL 1-level switch".to_string(),
            "1.6e-24".to_string(),
            sci(m.fer_undetected_rxl_single_switch()),
        ],
        vec![
            "Eqn (10) FIT_device, RXL 1-level switch".to_string(),
            "2.9e-3".to_string(),
            sci(m.fit_rxl_single_switch()),
        ],
        vec![
            "RXL improvement at 1 switch level".to_string(),
            "> 1e18 x".to_string(),
            format!(
                "{:.2e} x",
                m.fit_cxl_single_switch() / m.fit_rxl_single_switch()
            ),
        ],
    ];
    render_table(
        "Section 7.1 reliability analysis (BER 1e-6, 256B flits, x16 @ 500M flits/s)",
        &["quantity", "paper", "this reproduction"],
        &rows,
    )
}

/// Fig. 8 — FIT_device of CXL and RXL versus the number of switching levels.
pub fn fig8_table(max_levels: u32) -> String {
    let model = ReliabilityModel::cxl3_x16();
    let curve = fit_curve(&model, max_levels);
    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|p| {
            vec![
                p.levels.to_string(),
                sci(p.fit_cxl),
                sci(p.fit_rxl),
                format!("{:.1e}", p.improvement_ratio()),
            ]
        })
        .collect();
    render_table(
        "Fig. 8: FIT_device vs switching levels (paper: CXL collapses ~1e18x at one level, RXL flat)",
        &["switch levels", "FIT CXL", "FIT RXL", "CXL/RXL ratio"],
        &rows,
    )
}

/// Section 7.2 — bandwidth loss of each protection scheme (Eqns (11)–(14)).
pub fn bandwidth_table() -> String {
    let m = BandwidthModel::cxl3_x16();
    let rows = vec![
        vec![
            "Eqn (11) CXL direct, go-back-N".to_string(),
            "0.15%".to_string(),
            format!("{:.3}%", m.loss_cxl_direct() * 100.0),
        ],
        vec![
            "Eqn (12) CXL 1-level switch, piggybacked ACK".to_string(),
            "0.30%".to_string(),
            format!("{:.3}%", m.loss_cxl_switched_piggyback() * 100.0),
        ],
        vec![
            "Eqn (13) CXL 1-level switch, standalone ACK (p_coal = 1.0)".to_string(),
            "100%".to_string(),
            format!("{:.1}%", m.loss_standalone_ack(1.0) * 100.0),
        ],
        vec![
            "Eqn (13) CXL 1-level switch, standalone ACK (p_coal = 0.1)".to_string(),
            "10%".to_string(),
            format!("{:.1}%", m.loss_standalone_ack(0.1) * 100.0),
        ],
        vec![
            "Eqn (14) RXL 1-level switch".to_string(),
            "0.30%".to_string(),
            format!("{:.3}%", m.loss_rxl_switched() * 100.0),
        ],
    ];
    render_table(
        "Section 7.2 bandwidth loss (2 ns flits, 100 ns go-back-N retry, FER_UC 3e-5)",
        &["configuration", "paper", "this reproduction"],
        &rows,
    )
}

/// Section 2.5 — burst detection fractions of the 3-way interleaved FEC,
/// closed form versus the real decoder.
pub fn fec_detection_table(trials_per_burst: u64) -> String {
    let model = FecDetectionModel::cxl_flit();
    let fec = InterleavedFec::cxl_flit();
    let mut rows = Vec::new();
    for burst in 1..=8u32 {
        let report = burst_experiment(&fec, burst as usize, trials_per_burst, 1000 + burst as u64);
        let measured = if model.always_corrected(burst) {
            format!("corrected {:.1}%", report.corrected_fraction() * 100.0)
        } else {
            format!(
                "detected {:.1}%",
                report.detection_given_uncorrectable() * 100.0
            )
        };
        let paper = match burst {
            1..=3 => "corrected 100%".to_string(),
            4 => "detects 2/3 (66.7%)".to_string(),
            5 => "detects 8/9 (88.9%)".to_string(),
            _ => "detects 26/27 (96.3%)".to_string(),
        };
        rows.push(vec![
            format!("{burst}-symbol burst"),
            paper,
            format!("{:.1}%", model.detection_fraction(burst) * 100.0),
            measured,
        ]);
    }
    render_table(
        "Section 2.5 shortened-RS burst detection (3-way interleaved SSC, measured on the real decoder)",
        &["burst length", "paper", "closed form", "decoder measurement"],
        &rows,
    )
}

/// Section 4.1 — detection capability of the 64-bit flit CRC.
pub fn crc_detection_table() -> String {
    let analyzer = CrcAnalyzer::new(FLIT_CRC64, 242);
    let four_bit = analyzer.random_kbit_coverage(4, 5_000, 7);
    let burst64 = analyzer.burst_coverage(64, 2_000, 8);
    let burst65 = analyzer.burst_coverage(65, 5_000, 9);
    let rows = vec![
        vec![
            "random 4-bit errors".to_string(),
            "all detected".to_string(),
            format!(
                "{} / {} detected",
                four_bit.trials - four_bit.undetected,
                four_bit.trials
            ),
        ],
        vec![
            "bursts <= 64 bits".to_string(),
            "all detected".to_string(),
            format!(
                "{} / {} detected",
                burst64.trials - burst64.undetected,
                burst64.trials
            ),
        ],
        vec![
            "bursts of 65 bits".to_string(),
            "detected w.p. 1 - 2^-64".to_string(),
            format!(
                "{} / {} detected (escape prob. floor {:.1e})",
                burst65.trials - burst65.undetected,
                burst65.trials,
                rxl_crc::analysis::theoretical_undetected_fraction(64)
            ),
        ],
        vec![
            "undetected fraction under severe corruption".to_string(),
            "2^-64 = 5.4e-20".to_string(),
            sci(rxl_crc::analysis::theoretical_undetected_fraction(64)),
        ],
    ];
    render_table(
        "Section 4.1 64-bit flit CRC detection capability (242-byte CRC input)",
        &["error class", "paper", "this reproduction"],
        &rows,
    )
}

/// Section 7.3 — ISN hardware overhead.
pub fn hw_overhead_table() -> String {
    let m = HardwareCostModel::cxl_flit();
    let d = m.isn_delta();
    let rows = vec![
        vec![
            "extra XOR gates in the CRC encoder".to_string(),
            "10".to_string(),
            d.encoder_extra_xors.to_string(),
        ],
        vec![
            "extra XOR gates in the CRC decoder".to_string(),
            "10".to_string(),
            d.decoder_extra_xors.to_string(),
        ],
        vec![
            "extra logic depth".to_string(),
            "1 level".to_string(),
            format!("{} level", d.extra_logic_depth),
        ],
        vec![
            "SeqNum/ESeqNum comparator removed".to_string(),
            "one 10-bit comparator".to_string(),
            format!("{} two-input gates", m.seqnum_comparator_gates()),
        ],
        vec![
            "net gate change".to_string(),
            "a few gates".to_string(),
            format!("{:+}", d.net_gates()),
        ],
        vec![
            "relative CRC-datapath area increase".to_string(),
            "negligible".to_string(),
            format!("{:.4}%", m.relative_area_increase() * 100.0),
        ],
    ];
    render_table(
        "Section 7.3 ISN hardware overhead (64-bit CRC over 242 bytes, 10-bit sequence)",
        &["quantity", "paper", "this reproduction"],
        &rows,
    )
}

/// Section 2.4 / Fig. 2 — header overhead comparison.
pub fn header_overhead_table() -> String {
    let rows: Vec<Vec<String>> = HeaderOverhead::table()
        .iter()
        .map(|p| {
            vec![
                p.name.to_string(),
                format!("{} B", p.overhead_bytes),
                format!("{} B", p.payload_bytes),
                format!("{:.2}%", p.overhead_fraction() * 100.0),
                format!("{} bits", p.sequence_tracking_bits),
            ]
        })
        .collect();
    render_table(
        "Section 2.4 header/redundancy overhead per transfer unit",
        &[
            "protocol",
            "overhead",
            "payload",
            "overhead fraction",
            "header bits for sequence tracking",
        ],
        &rows,
    )
}

/// Section 5 — the buffering cost of the alternatives ISN forgoes
/// (reordering / selective repeat) versus plain go-back-N.
pub fn buffering_table() -> String {
    let m = BufferingModel::cxl3_x16();
    let rows = vec![
        vec![
            "multi-path reordering, 1 ms arrival skew".to_string(),
            "1 Gb (128 MB) reassembly buffer".to_string(),
            format!(
                "{:.2e} bits ({:.0} MB)",
                m.buffer_bits(1e-3),
                m.multipath_reassembly_bytes(1e-3) / 1e6
            ),
        ],
        vec![
            "selective repeat, 1 us halt window".to_string(),
            "1 Mb buffer".to_string(),
            format!(
                "{:.2e} bits ({:.0} kB)",
                m.buffer_bits(1e-6),
                m.selective_repeat_bytes(1e-6) / 1e3
            ),
        ],
        vec![
            "go-back-N, 100 ns retry loop".to_string(),
            "replay buffer only".to_string(),
            format!("{:.0} flits in flight", m.flits_in_window(100e-9)),
        ],
    ];
    render_table(
        "Section 5 buffering cost of reordering alternatives (1 Tb/s x16 link)",
        &["scheme", "paper", "this reproduction"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffering_table_reproduces_the_section5_numbers() {
        let t = buffering_table();
        assert!(t.contains("1.00e9 bits"));
        assert!(t.contains("1.00e6 bits"));
    }

    #[test]
    fn reliability_table_contains_the_headline_numbers() {
        let t = reliability_table();
        assert!(t.contains("5.4e15") || t.contains("5.40e15"));
        assert!(t.contains("1.6"));
        assert!(t.contains("Eqn (10)"));
    }

    #[test]
    fn fig8_table_has_one_row_per_level() {
        let t = fig8_table(4);
        assert_eq!(
            t.lines()
                .filter(|l| l.starts_with(char::is_numeric))
                .count(),
            5
        );
    }

    #[test]
    fn bandwidth_table_mentions_every_equation() {
        let t = bandwidth_table();
        for eqn in ["Eqn (11)", "Eqn (12)", "Eqn (13)", "Eqn (14)"] {
            assert!(t.contains(eqn), "missing {eqn}");
        }
    }

    #[test]
    fn fec_detection_table_runs_the_real_decoder() {
        let t = fec_detection_table(100);
        assert!(t.contains("4-symbol burst"));
        assert!(t.contains("corrected 100.0%"));
    }

    #[test]
    fn crc_and_hw_and_overhead_tables_render() {
        assert!(crc_detection_table().contains("random 4-bit errors"));
        assert!(hw_overhead_table().contains("comparator"));
        assert!(header_overhead_table().contains("RXL 256B flit"));
    }
}
