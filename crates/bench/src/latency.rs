//! Latency-vs-offered-load measurement (`latency_sweep`).
//!
//! Runs the `rxl-load` open-loop sweep over the canonical leaf–spine pod
//! for both protocols and reports one row per ladder point: delivered
//! throughput, efficiency, and the latency distribution (p50/p90/p99/p99.9/
//! max, in flit slots). The machine-readable form (`BENCH_latency.json`) is
//! the repository's latency trajectory, schema-checked in CI alongside the
//! throughput and chaos snapshots.

use rxl_fabric::{FabricConfig, FabricTopology};
use rxl_link::{ChannelErrorModel, ProtocolVariant};
use rxl_load::{ArrivalProcess, LoadSweep, LoadSweepConfig, TrafficMatrix};

use crate::json::{JsonDocument, JsonRow};
use crate::{render_table, sci};

/// One ladder point of one sweep.
#[derive(Clone, Debug)]
pub struct LatencyRow {
    /// Snapshot label (`current` / `run_all` / CI).
    pub label: String,
    /// Topology name.
    pub workload: String,
    /// Protocol variant simulated.
    pub protocol: &'static str,
    /// Traffic-matrix label.
    pub matrix: String,
    /// Arrival-process label.
    pub arrival: &'static str,
    /// Offered load (fraction of line rate).
    pub offered_load: f64,
    /// Concurrent sessions.
    pub sessions: usize,
    /// Messages per loaded session per direction.
    pub messages_per_session: usize,
    /// Monte-Carlo trials at this point.
    pub trials: u64,
    /// Messages injected across trials.
    pub injected_messages: u64,
    /// Messages with recorded latency across trials.
    pub delivered_messages: u64,
    /// Pooled delivered throughput (messages per slot).
    pub delivered_per_slot: f64,
    /// Delivered / offered rate.
    pub efficiency: f64,
    /// Median latency (slots).
    pub p50: u64,
    /// 90th-percentile latency (slots).
    pub p90: u64,
    /// 99th-percentile latency (slots).
    pub p99: u64,
    /// 99.9th-percentile latency (slots).
    pub p999: u64,
    /// Maximum latency (slots).
    pub max: u64,
    /// Mean latency (slots).
    pub mean_slots: f64,
    /// `true` if this point is the sweep's detected saturation knee.
    pub knee: bool,
}

/// Runs the latency sweep suite (leaf–spine pod × CXL and RXL) and returns
/// one row per ladder point. `small` selects the CI smoke configuration.
pub fn run_latency_sweep(small: bool, label: &str) -> Vec<LatencyRow> {
    let (loads, messages, trials) = if small {
        (vec![0.10, 0.40], 150, 1)
    } else {
        (vec![0.05, 0.10, 0.20, 0.30, 0.50, 0.80], 600, 4)
    };
    let topology = FabricTopology::leaf_spine(2, 1, 2);
    let mut rows = Vec::new();
    for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
        let sweep = LoadSweep::new(
            topology.clone(),
            FabricConfig::new(variant)
                .with_channel(ChannelErrorModel::ideal())
                .with_seed(0x10AD_BE2C),
            LoadSweepConfig {
                loads: loads.clone(),
                messages_per_session: messages,
                trials,
                matrix: TrafficMatrix::Uniform,
                arrival: ArrivalProcess::fixed(1.0),
                ..LoadSweepConfig::default()
            },
        );
        let report = sweep.run();
        for (i, p) in report.points.iter().enumerate() {
            rows.push(LatencyRow {
                label: label.to_string(),
                workload: report.topology.clone(),
                protocol: crate::variant_name(variant),
                matrix: report.matrix.clone(),
                arrival: report.arrival,
                offered_load: p.offered_load,
                sessions: report.sessions,
                messages_per_session: messages,
                trials: p.trials,
                injected_messages: p.injected_messages,
                delivered_messages: p.delivered_messages,
                delivered_per_slot: p.delivered_per_slot,
                efficiency: p.efficiency,
                p50: p.stats.p50,
                p90: p.stats.p90,
                p99: p.stats.p99,
                p999: p.stats.p999,
                max: p.stats.max,
                mean_slots: p.stats.mean,
                knee: report.knee == Some(i),
            });
        }
    }
    rows
}

/// Renders the rows as an aligned text table.
pub fn latency_table(rows: &[LatencyRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.protocol.to_string(),
                format!(
                    "{:.2}{}",
                    r.offered_load,
                    if r.knee { " ←knee" } else { "" }
                ),
                sci(r.delivered_per_slot),
                format!("{:.2}", r.efficiency),
                r.p50.to_string(),
                r.p90.to_string(),
                r.p99.to_string(),
                r.p999.to_string(),
                r.max.to_string(),
                format!("{:.1}", r.mean_slots),
            ]
        })
        .collect();
    render_table(
        "Latency vs offered load (slots; leaf-spine pod, ideal channel)",
        &[
            "label",
            "protocol",
            "load",
            "delivered/s",
            "eff",
            "p50",
            "p90",
            "p99",
            "p99.9",
            "max",
            "mean",
        ],
        &table_rows,
    )
}

/// Serialises the rows as a JSON document (hand-rolled — the build
/// container has no serde) for `BENCH_latency.json`.
pub fn latency_json(rows: &[LatencyRow]) -> String {
    JsonDocument::new("latency_sweep").rows(rows.iter().map(|r| {
        JsonRow::new()
            .str("label", &r.label)
            .str("workload", &r.workload)
            .str("protocol", r.protocol)
            .str("matrix", &r.matrix)
            .str("arrival", r.arrival)
            .num("offered_load", r.offered_load, 4)
            .raw("sessions", r.sessions)
            .raw("messages_per_session", r.messages_per_session)
            .raw("trials", r.trials)
            .raw("injected_messages", r.injected_messages)
            .raw("delivered_messages", r.delivered_messages)
            .num("delivered_per_slot", r.delivered_per_slot, 4)
            .num("efficiency", r.efficiency, 4)
            .raw("p50", r.p50)
            .raw("p90", r.p90)
            .raw("p99", r.p99)
            .raw("p999", r.p999)
            .raw("max", r.max)
            .num("mean_slots", r.mean_slots, 3)
            .raw("knee", r.knee)
            .finish()
    }))
}

/// Writes the JSON form to `BENCH_latency.json` in `out` (the repo root
/// when `None`) and returns the path written.
pub fn write_latency_json(
    rows: &[LatencyRow],
    out: Option<&std::path::Path>,
) -> std::path::PathBuf {
    crate::json::write_artifact("BENCH_latency.json", out, &latency_json(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_runs_and_serialises() {
        let rows = run_latency_sweep(true, "test");
        // 2 protocols × 2 ladder points.
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.delivered_messages > 0);
            assert_eq!(r.injected_messages, r.delivered_messages);
            assert!(r.p50 > 0 && r.p99 >= r.p50 && r.max >= r.p999);
            assert!(r.efficiency > 0.0);
        }
        let table = latency_table(&rows);
        assert!(table.contains("Latency vs offered load"));
        let json = latency_json(&rows);
        assert!(json.contains("\"bench\": \"latency_sweep\""));
        assert!(json.contains("\"label\": \"test\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
