//! Chaos sweep: scenario Monte-Carlo measurements for the bench harness.
//!
//! `chaos_sweep` runs two canonical fault-injection scenarios from
//! `rxl-chaos` over a leaf–spine pod, once per protocol variant:
//!
//! * **uplink storm** — a BER storm of configurable acceleration on one
//!   leaf → spine trunk, with epoch boundaries at the storm's start and end
//!   so the per-epoch `Fail_order` counts separate before / during / after;
//! * **spine failover** — one of two spines dies mid-traffic; surviving
//!   sessions must reroute and keep delivering.
//!
//! The JSON form (`BENCH_chaos.json`) extends the repository's
//! machine-readable trajectory: baseline CXL's storm-window failure counts
//! and availability sit next to RXL's clean rows at the same operating
//! points.

use rxl_chaos::{ChaosMonteCarlo, ChaosMonteCarloReport, Scenario};
use rxl_fabric::{FabricConfig, FabricTopology, FabricWorkload};
use rxl_link::{ChannelErrorModel, ProtocolVariant};

use crate::json::{JsonDocument, JsonRow};
use crate::{render_table, sci};

/// One scenario × protocol measurement.
#[derive(Clone, Debug)]
pub struct ChaosRow {
    /// Snapshot label (`current`, `before`, `after`).
    pub label: String,
    /// Scenario identifier (`uplink_storm_x<N>` / `spine_failover`).
    pub scenario: String,
    /// Protocol simulated.
    pub variant: &'static str,
    /// Storm BER acceleration factor (0 for non-storm scenarios).
    pub factor: f64,
    /// Monte-Carlo trials.
    pub trials: u64,
    /// Concurrent sessions.
    pub sessions: usize,
    /// Messages per session per direction.
    pub messages_per_session: usize,
    /// `Fail_order` events in the epoch before the fault.
    pub before_events: u64,
    /// `Fail_order` events while the fault is active (for the failover
    /// scenario: after the failure).
    pub during_events: u64,
    /// `Fail_order` events after the fault cleared (0 for permanent faults).
    pub after_events: u64,
    /// Clean deliveries while the fault is active — the "fabric still
    /// works" signal of the failover scenario.
    pub during_clean_deliveries: u64,
    /// Application-visible failures (ordering + duplicates + corruption;
    /// losses are only attributed at trial end) observed while the fault is
    /// active.
    pub during_failures: u64,
    /// Total application-visible failures over all trials (losses included).
    pub total_failures: u64,
    /// Flits destroyed by fault injection.
    pub blackholed_flits: u64,
    /// Mean availability over trials.
    pub availability_mean: f64,
    /// Worst-trial availability.
    pub availability_min: f64,
    /// Trials that drained.
    pub drained_trials: u64,
    /// Trials classified as credit deadlock.
    pub deadlocked_trials: u64,
    /// Trials that stalled only after delivering every message
    /// (control-plane replay wedge; counted as drained).
    pub post_delivery_wedge_trials: u64,
    /// Earliest first-`Fail_order` slot across trials (−1 = none).
    pub earliest_fail_order_slot: i64,
}

/// Extracts the (before, during, after) `Fail_order` sums from a report's
/// epochs, tolerating scenarios with only two epochs (permanent faults).
fn epoch_events(report: &ChaosMonteCarloReport) -> (u64, u64, u64) {
    let ev = |i: usize| {
        report
            .epochs
            .get(i)
            .map(|e| e.undetected_drop_events)
            .unwrap_or(0)
    };
    (ev(0), ev(1), ev(2))
}

fn row_from_report(
    label: &str,
    scenario: String,
    variant: ProtocolVariant,
    factor: f64,
    sessions: usize,
    messages: usize,
    report: &ChaosMonteCarloReport,
) -> ChaosRow {
    let (before_events, during_events, after_events) = epoch_events(report);
    ChaosRow {
        label: label.to_string(),
        scenario,
        variant: crate::variant_name(variant),
        factor,
        trials: report.trials,
        sessions,
        messages_per_session: messages,
        before_events,
        during_events,
        after_events,
        during_clean_deliveries: report
            .epochs
            .get(1)
            .map(|e| e.failures.clean_deliveries)
            .unwrap_or(0),
        during_failures: report
            .epochs
            .get(1)
            .map(|e| e.failures.total_failures())
            .unwrap_or(0),
        total_failures: report.failures.total_failures(),
        blackholed_flits: report.blackholed_flits,
        availability_mean: report.availability_mean(),
        availability_min: report.availability_min(),
        drained_trials: report.drained_trials,
        deadlocked_trials: report.deadlocked_trials,
        post_delivery_wedge_trials: report.post_delivery_wedge_trials,
        earliest_fail_order_slot: report
            .earliest_fail_order_slot
            .map(|s| s as i64)
            .unwrap_or(-1),
    }
}

/// Runs the chaos sweep and returns the measured rows. `small` selects the
/// CI-sized smoke configuration.
pub fn run_chaos_sweep(small: bool, label: &str) -> Vec<ChaosRow> {
    let (messages, trials, storm_start, storm_len, factors): (usize, u64, u64, u64, &[f64]) =
        if small {
            (3_000, 2, 120, 180, &[20.0])
        } else {
            (12_000, 4, 400, 600, &[10.0, 20.0, 50.0])
        };
    let base_ber = 1e-5;
    let mut rows = Vec::new();

    // Uplink-storm sweep: one spine, so every session crosses the stormed
    // leaf 0 → spine trunk in one of its directions.
    for &factor in factors {
        let topology = FabricTopology::leaf_spine(2, 1, 2);
        let sessions = topology.session_count();
        let uplink = topology.trunk_between(0, 2).expect("leaf 0 uplink");
        let scenario = Scenario::named(format!("uplink_storm_x{factor}")).ber_storm(
            storm_start,
            storm_len,
            vec![uplink],
            factor,
        );
        let workload = FabricWorkload::symmetric(sessions, messages, 8, 0xC4A05);
        for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
            let config = FabricConfig {
                // Livelocked baseline-CXL trials would otherwise idle
                // against the 400k-slot default limit.
                max_slots: 40_000,
                ..FabricConfig::new(variant)
            }
            .with_channel(ChannelErrorModel::random(base_ber))
            .with_seed(0xC4A0_5EED);
            let name = scenario.name.clone();
            let report = ChaosMonteCarlo::new(topology.clone(), config, scenario.clone(), trials)
                .run(&workload);
            rows.push(row_from_report(
                label, name, variant, factor, sessions, messages, &report,
            ));
        }
    }

    // Spine failover: two spines, one dies mid-traffic.
    {
        let topology = FabricTopology::leaf_spine(2, 2, 2);
        let sessions = topology.session_count();
        let fail_at = storm_start;
        let scenario = Scenario::named("spine_failover").switch_fail(fail_at, 2);
        let workload = FabricWorkload::symmetric(sessions, messages, 8, 0xFA11);
        for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
            let config = FabricConfig {
                max_slots: 40_000,
                ..FabricConfig::new(variant)
            }
            .with_channel(ChannelErrorModel::ideal())
            .with_seed(0xFA11_5EED);
            let name = scenario.name.clone();
            let report = ChaosMonteCarlo::new(topology.clone(), config, scenario.clone(), trials)
                .run(&workload);
            rows.push(row_from_report(
                label, name, variant, 0.0, sessions, messages, &report,
            ));
        }
    }
    rows
}

/// Renders the rows as an aligned text table.
pub fn chaos_table(rows: &[ChaosRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.variant.to_string(),
                r.before_events.to_string(),
                r.during_events.to_string(),
                r.after_events.to_string(),
                r.during_failures.to_string(),
                r.total_failures.to_string(),
                r.blackholed_flits.to_string(),
                sci(r.availability_mean),
                format!("{}/{}", r.drained_trials, r.trials),
                r.post_delivery_wedge_trials.to_string(),
                if r.earliest_fail_order_slot < 0 {
                    "-".to_string()
                } else {
                    r.earliest_fail_order_slot.to_string()
                },
            ]
        })
        .collect();
    render_table(
        "Chaos scenarios: Fail_order events before/during/after the fault",
        &[
            "scenario",
            "protocol",
            "before",
            "during",
            "after",
            "during fails",
            "failures",
            "blackholed",
            "avail",
            "drained",
            "wedged",
            "first-fail slot",
        ],
        &table_rows,
    )
}

/// Serialises the rows as `BENCH_chaos.json` content (hand-rolled — no
/// serde in the build container).
pub fn chaos_json(rows: &[ChaosRow]) -> String {
    JsonDocument::new("chaos_sweep").rows(rows.iter().map(|r| {
        JsonRow::new()
            .str("label", &r.label)
            .str("scenario", &r.scenario)
            .str("protocol", r.variant)
            .raw("factor", r.factor)
            .raw("trials", r.trials)
            .raw("sessions", r.sessions)
            .raw("messages_per_session", r.messages_per_session)
            .raw("before_events", r.before_events)
            .raw("during_events", r.during_events)
            .raw("after_events", r.after_events)
            .raw("during_clean_deliveries", r.during_clean_deliveries)
            .raw("during_failures", r.during_failures)
            .raw("total_failures", r.total_failures)
            .raw("blackholed_flits", r.blackholed_flits)
            .num("availability_mean", r.availability_mean, 6)
            .num("availability_min", r.availability_min, 6)
            .raw("drained_trials", r.drained_trials)
            .raw("deadlocked_trials", r.deadlocked_trials)
            .raw("post_delivery_wedge_trials", r.post_delivery_wedge_trials)
            .raw("earliest_fail_order_slot", r.earliest_fail_order_slot)
            .finish()
    }))
}

/// Writes the JSON form to `BENCH_chaos.json` in `out` (the repo root when
/// `None`) and returns the path written.
pub fn write_chaos_json(rows: &[ChaosRow], out: Option<&std::path::Path>) -> std::path::PathBuf {
    crate::json::write_artifact("BENCH_chaos.json", out, &chaos_json(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_runs_and_serialises() {
        let rows = run_chaos_sweep(true, "test");
        assert_eq!(rows.len(), 4, "1 storm factor + failover, × 2 variants");
        for r in &rows {
            assert!(r.trials > 0);
            assert!(r.availability_mean > 0.0);
        }
        // RXL rows never show Fail_order events.
        for r in rows.iter().filter(|r| r.variant == "RXL") {
            assert_eq!(
                (r.before_events, r.during_events, r.after_events),
                (0, 0, 0),
                "{}",
                r.scenario
            );
        }
        // The failover scenario keeps delivering after the failure for both
        // protocols.
        for r in rows.iter().filter(|r| r.scenario == "spine_failover") {
            assert!(r.during_clean_deliveries > 0, "{} rerouted", r.variant);
            assert!(r.blackholed_flits > 0);
        }
        let table = chaos_table(&rows);
        assert!(table.contains("Chaos scenarios"));
        let json = chaos_json(&rows);
        assert!(json.contains("\"bench\": \"chaos_sweep\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
