//! Protocol-failure counters.
//!
//! Section 7.1 of the paper defines two protocol failure classes:
//! `Fail_data` (corrupted data forwarded to the application layer) and
//! `Fail_order` (data forwarded in the wrong order). This reproduction also
//! tracks duplicates and losses separately because the transaction-layer
//! scenarios of Fig. 5 distinguish them.

/// Counts of application-visible protocol failures.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FailureCounts {
    /// Messages delivered with corrupted content (`Fail_data`).
    pub data_failures: u64,
    /// Messages delivered out of order within their command queue
    /// (`Fail_order`).
    pub ordering_failures: u64,
    /// Messages delivered more than once (the duplicate-request failure of
    /// Fig. 5a).
    pub duplicate_deliveries: u64,
    /// Messages that were sent but never delivered.
    pub lost_messages: u64,
    /// Messages delivered exactly once, in order, with intact content.
    pub clean_deliveries: u64,
}

impl FailureCounts {
    /// Total application-visible failures (corruption + ordering + duplicates
    /// + losses).
    pub fn total_failures(&self) -> u64 {
        self.data_failures + self.ordering_failures + self.duplicate_deliveries + self.lost_messages
    }

    /// `true` if no failure of any kind was observed.
    pub fn is_clean(&self) -> bool {
        self.total_failures() == 0
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &FailureCounts) {
        self.data_failures += other.data_failures;
        self.ordering_failures += other.ordering_failures;
        self.duplicate_deliveries += other.duplicate_deliveries;
        self.lost_messages += other.lost_messages;
        self.clean_deliveries += other.clean_deliveries;
    }

    /// Failure rate per delivered-or-lost message.
    pub fn failure_rate(&self) -> f64 {
        let denom = self.clean_deliveries + self.total_failures();
        if denom == 0 {
            return 0.0;
        }
        self.total_failures() as f64 / denom as f64
    }
}

impl std::fmt::Display for FailureCounts {
    /// Renders the counters as an aligned multi-line block, one counter per
    /// line, so reports and examples need not hand-format them.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "clean deliveries     : {}", self.clean_deliveries)?;
        writeln!(f, "ordering failures    : {}", self.ordering_failures)?;
        writeln!(f, "duplicate deliveries : {}", self.duplicate_deliveries)?;
        writeln!(f, "data failures        : {}", self.data_failures)?;
        writeln!(f, "lost messages        : {}", self.lost_messages)?;
        write!(f, "failure rate         : {:.3e}", self.failure_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rates() {
        let f = FailureCounts {
            data_failures: 1,
            ordering_failures: 2,
            duplicate_deliveries: 3,
            lost_messages: 4,
            clean_deliveries: 90,
        };
        assert_eq!(f.total_failures(), 10);
        assert!(!f.is_clean());
        assert!((f.failure_rate() - 0.1).abs() < 1e-12);
        assert!(FailureCounts::default().is_clean());
        assert_eq!(FailureCounts::default().failure_rate(), 0.0);
    }

    #[test]
    fn display_renders_every_counter() {
        let f = FailureCounts {
            data_failures: 1,
            ordering_failures: 2,
            duplicate_deliveries: 3,
            lost_messages: 4,
            clean_deliveries: 90,
        };
        let s = f.to_string();
        assert!(s.contains("clean deliveries     : 90"));
        assert!(s.contains("ordering failures    : 2"));
        assert!(s.contains("duplicate deliveries : 3"));
        assert!(s.contains("data failures        : 1"));
        assert!(s.contains("lost messages        : 4"));
        assert!(s.contains("failure rate"));
    }

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = FailureCounts {
            clean_deliveries: 10,
            ..Default::default()
        };
        a.merge(&FailureCounts {
            ordering_failures: 2,
            clean_deliveries: 5,
            ..Default::default()
        });
        assert_eq!(a.clean_deliveries, 15);
        assert_eq!(a.ordering_failures, 2);
    }
}
