//! A MESI-lite coherence directory demonstrating the application-level impact
//! of link-layer failures (Section 4.2 of the paper).
//!
//! Cache-coherent protocols rely on the strict ordering of requests,
//! responses, and data. The directory here tracks, per cache line, which
//! agents hold the line and in what state, and flags the protocol violations
//! that duplicated or reordered requests provoke — e.g. granting exclusive
//! ownership twice, or receiving a writeback from an agent that does not own
//! the line.

use std::collections::HashMap;

use rxl_flit::{MemOp, Message};

/// Directory-visible state of one cache line.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum LineState {
    /// No cache holds the line.
    #[default]
    Invalid,
    /// One or more caches hold the line in Shared state.
    Shared {
        /// The agents holding the line.
        sharers: Vec<u16>,
    },
    /// Exactly one cache holds the line in Modified/Exclusive state.
    Exclusive {
        /// The owning agent.
        owner: u16,
    },
}

/// A coherence-protocol violation caused by duplicated or misordered traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoherenceViolation {
    /// Exclusive ownership was requested by an agent that already owns the
    /// line (a duplicated RdOwn).
    DuplicateOwnership {
        /// The affected cache-line address.
        addr: u64,
        /// The agent involved.
        agent: u16,
    },
    /// A writeback arrived from an agent that does not own the line.
    WritebackWithoutOwnership {
        /// The affected cache-line address.
        addr: u64,
        /// The agent involved.
        agent: u16,
    },
    /// An invalidation acknowledgement arrived for a line the agent did not
    /// hold.
    InvalidateNonHolder {
        /// The affected cache-line address.
        addr: u64,
        /// The agent involved.
        agent: u16,
    },
}

/// The host-side directory.
#[derive(Clone, Debug, Default)]
pub struct CoherenceDirectory {
    lines: HashMap<u64, LineState>,
    violations: Vec<CoherenceViolation>,
    transactions: u64,
}

impl CoherenceDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current state of a line.
    pub fn line_state(&self, addr: u64) -> LineState {
        self.lines.get(&addr).cloned().unwrap_or_default()
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[CoherenceViolation] {
        &self.violations
    }

    /// Number of coherence transactions processed.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Processes one request from `agent` (the CQID doubles as the agent id
    /// in this model). Returns the violation recorded, if any.
    pub fn process(&mut self, agent: u16, msg: &Message) -> Option<CoherenceViolation> {
        let Message::Request { op, addr, .. } = *msg else {
            return None;
        };
        self.transactions += 1;
        let state = self.lines.entry(addr).or_default();
        let violation = match op {
            MemOp::RdCurr => None,
            MemOp::RdShared => {
                match state {
                    LineState::Invalid => {
                        *state = LineState::Shared {
                            sharers: vec![agent],
                        }
                    }
                    LineState::Shared { sharers } => {
                        if !sharers.contains(&agent) {
                            sharers.push(agent);
                        }
                    }
                    LineState::Exclusive { owner } => {
                        // Downgrade the owner to shared alongside the reader.
                        let owner = *owner;
                        *state = LineState::Shared {
                            sharers: vec![owner, agent],
                        };
                    }
                }
                None
            }
            MemOp::RdOwn => match state {
                LineState::Exclusive { owner } if *owner == agent => {
                    Some(CoherenceViolation::DuplicateOwnership { addr, agent })
                }
                _ => {
                    *state = LineState::Exclusive { owner: agent };
                    None
                }
            },
            MemOp::WrLine | MemOp::WrPtl => match state {
                LineState::Exclusive { owner } if *owner == agent => {
                    *state = LineState::Invalid;
                    None
                }
                _ => Some(CoherenceViolation::WritebackWithoutOwnership { addr, agent }),
            },
            MemOp::Invalidate => match state {
                LineState::Shared { sharers } if sharers.contains(&agent) => {
                    let remaining: Vec<u16> =
                        sharers.iter().copied().filter(|&a| a != agent).collect();
                    *state = if remaining.is_empty() {
                        LineState::Invalid
                    } else {
                        LineState::Shared { sharers: remaining }
                    };
                    None
                }
                LineState::Exclusive { owner } if *owner == agent => {
                    *state = LineState::Invalid;
                    None
                }
                _ => Some(CoherenceViolation::InvalidateNonHolder { addr, agent }),
            },
        };
        if let Some(v) = violation {
            self.violations.push(v);
        }
        violation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(op: MemOp, addr: u64) -> Message {
        Message::request(op, addr, 0, 0)
    }

    #[test]
    fn ordinary_read_share_own_writeback_cycle_is_clean() {
        let mut dir = CoherenceDirectory::new();
        assert_eq!(dir.process(1, &req(MemOp::RdShared, 0x40)), None);
        assert_eq!(dir.line_state(0x40), LineState::Shared { sharers: vec![1] });
        assert_eq!(dir.process(2, &req(MemOp::RdShared, 0x40)), None);
        assert_eq!(dir.process(1, &req(MemOp::RdOwn, 0x40)), None);
        assert_eq!(dir.line_state(0x40), LineState::Exclusive { owner: 1 });
        assert_eq!(dir.process(1, &req(MemOp::WrLine, 0x40)), None);
        assert_eq!(dir.line_state(0x40), LineState::Invalid);
        assert!(dir.violations().is_empty());
        assert_eq!(dir.transactions(), 4);
    }

    #[test]
    fn duplicated_rdown_is_a_violation() {
        // The Fig. 5a failure: a replayed (duplicate) ownership request.
        let mut dir = CoherenceDirectory::new();
        assert_eq!(dir.process(3, &req(MemOp::RdOwn, 0x80)), None);
        let v = dir.process(3, &req(MemOp::RdOwn, 0x80));
        assert_eq!(
            v,
            Some(CoherenceViolation::DuplicateOwnership {
                addr: 0x80,
                agent: 3
            })
        );
        assert_eq!(dir.violations().len(), 1);
    }

    #[test]
    fn misordered_writeback_is_a_violation() {
        // If the RdOwn is lost but the subsequent WrLine arrives, the
        // writeback has no ownership to back it.
        let mut dir = CoherenceDirectory::new();
        let v = dir.process(2, &req(MemOp::WrLine, 0x100));
        assert_eq!(
            v,
            Some(CoherenceViolation::WritebackWithoutOwnership {
                addr: 0x100,
                agent: 2
            })
        );
    }

    #[test]
    fn exclusive_is_downgraded_by_another_reader() {
        let mut dir = CoherenceDirectory::new();
        dir.process(1, &req(MemOp::RdOwn, 0x40));
        dir.process(2, &req(MemOp::RdShared, 0x40));
        assert_eq!(
            dir.line_state(0x40),
            LineState::Shared {
                sharers: vec![1, 2]
            }
        );
    }

    #[test]
    fn invalidate_tracks_holders() {
        let mut dir = CoherenceDirectory::new();
        dir.process(1, &req(MemOp::RdShared, 0x40));
        dir.process(2, &req(MemOp::RdShared, 0x40));
        assert_eq!(dir.process(1, &req(MemOp::Invalidate, 0x40)), None);
        assert_eq!(dir.line_state(0x40), LineState::Shared { sharers: vec![2] });
        // A non-holder invalidating is a violation (e.g. stale duplicate).
        let v = dir.process(7, &req(MemOp::Invalidate, 0x40));
        assert_eq!(
            v,
            Some(CoherenceViolation::InvalidateNonHolder {
                addr: 0x40,
                agent: 7
            })
        );
    }

    #[test]
    fn rdcurr_never_changes_state() {
        let mut dir = CoherenceDirectory::new();
        dir.process(1, &req(MemOp::RdOwn, 0x200));
        assert_eq!(dir.process(2, &req(MemOp::RdCurr, 0x200)), None);
        assert_eq!(dir.line_state(0x200), LineState::Exclusive { owner: 1 });
    }

    #[test]
    fn non_request_messages_are_ignored() {
        let mut dir = CoherenceDirectory::new();
        assert_eq!(dir.process(0, &Message::response_ok(0, 0)), None);
        assert_eq!(dir.transactions(), 0);
    }
}
