//! The delivery auditor: ground-truth classification of what the link layer
//! handed to the application.
//!
//! The auditor is the measurement instrument behind every failure-rate
//! experiment: the workload registers each message when it is submitted for
//! transmission, and the receiving endpoint reports each message the link
//! layer forwarded. The auditor then classifies deliveries into the paper's
//! failure categories (Section 7.1, Fig. 5):
//!
//! * **in order** — the message is the next undelivered one of its CQID,
//! * **out of order** — an earlier message of the same CQID is still missing
//!   (`Fail_order`),
//! * **duplicate** — the message was already delivered (Fig. 5a),
//! * **corrupted** — the content differs from what was sent (`Fail_data`),
//! * **unexpected** — the message was never sent at all (also `Fail_data`),
//! * **lost** — counted at the end for sent messages never delivered.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use rxl_flit::Message;

use crate::failure::FailureCounts;

/// A fast, deterministic hasher (the FxHash construction) for the auditor's
/// per-message maps. Every delivered flit audits up to 15 messages, each a
/// map lookup, so the default SipHash cost is measurable at fabric scale.
/// Hash quality only affects speed, never counts: nothing iterates these
/// maps in hash order to produce results. Public so other hot paths in the
/// workspace (the fabric engine's latency tag→slot maps) share the same
/// deterministic construction instead of growing private copies.
#[derive(Default)]
pub struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// A `HashMap` with the deterministic [`FxHasher`] — the workspace's shared
/// fast-map type for per-message bookkeeping on simulation hot paths.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Classification of a single observed delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryVerdict {
    /// Delivered exactly once, content intact, in CQID order.
    InOrder,
    /// Delivered while an earlier message of the same CQID is still missing.
    OutOfOrder,
    /// Delivered a second (or later) time.
    Duplicate,
    /// Content does not match what was sent.
    Corrupted,
    /// No such message was ever sent.
    Unexpected,
}

/// The splitmix64 finalizer: a cheap bijective mixer whose every output bit
/// depends on every input bit. Public because every [`FastMap`] keyed by a
/// *packed* integer needs it: [`FxHasher`] alone leaves the low output bits
/// (hashbrown's bucket index) a function of only the low input bits, so keys
/// whose entropy sits in high bit fields cluster catastrophically.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Identity of a message *within its CQID*, packed as
/// `tag:16 | kind:8 | chunk:8` (the CQID itself selects the per-CQID record
/// vector, so it needs no representation here).
#[inline]
fn ident_of(msg: &Message) -> u32 {
    let (kind, chunk) = match msg {
        Message::Request { .. } => (0u8, 0u8),
        Message::Response { .. } => (1, 0),
        Message::DataHeader { .. } => (2, 0),
        Message::Data { chunk_idx, .. } => (3, *chunk_idx),
    };
    (msg.tag() as u32) << 16 | (kind as u32) << 8 | chunk as u32
}

#[derive(Clone, Debug)]
struct SentRecord {
    /// [`ident_of`] the registered message.
    ident: u32,
    delivered: bool,
    message: Message,
}

/// Audit state of one CQID: the registered messages *in send order* (so a
/// record's index is its send-order position) plus the delivery cursor.
///
/// This dense layout is the auditor's hot-path design: deliveries on a quiet
/// link arrive overwhelmingly in send order, so classifying one is a single
/// identity compare against the record under the cursor — no hashing, no
/// probing, and sequential memory access. Workload generators register
/// identities in increasing order, which keeps `sorted` true and gives the
/// out-of-order / duplicate / unexpected slow paths a binary search; an
/// unsorted registration order merely downgrades those rare paths to a
/// linear scan.
#[derive(Clone, Debug)]
struct CqidAudit {
    records: Vec<SentRecord>,
    /// Lowest send-order index not yet delivered.
    next_undelivered: usize,
    /// Records delivered (at least once) in this CQID.
    delivered_count: usize,
    /// `true` while `records` is strictly increasing by `ident`.
    sorted: bool,
}

impl CqidAudit {
    fn new() -> Self {
        CqidAudit {
            records: Vec::new(),
            next_undelivered: 0,
            delivered_count: 0,
            sorted: true,
        }
    }

    /// `true` while some message has been delivered ahead of a still-missing
    /// earlier message of the same CQID: `records[0..next_undelivered]` is
    /// the contiguous delivered prefix, so any delivery beyond it means a
    /// gap is open.
    fn gapped(&self) -> bool {
        self.delivered_count > self.next_undelivered
    }
}

/// Sentinel in [`DeliveryAuditor::cqid_slot`] for a CQID never registered.
const NO_CQID: u32 = u32::MAX;

/// Ground-truth auditor for one direction of traffic.
#[derive(Clone, Debug, Default)]
pub struct DeliveryAuditor {
    /// `cqid_slot[cqid]` → index into `cqs` ([`NO_CQID`] if unregistered).
    /// Grown to the highest registered CQID + 1; CQIDs are 16-bit, so the
    /// worst case is a 256 KiB table and the typical workload a few words.
    cqid_slot: Vec<u32>,
    cqs: Vec<CqidAudit>,
    counts: FailureCounts,
    /// Number of CQIDs currently holding an ordering gap (a delivered
    /// message ahead of a missing earlier one).
    gapped_cqids: usize,
    /// Total messages registered across all CQIDs.
    registered: usize,
    /// Total messages delivered at least once across all CQIDs.
    delivered_unique: usize,
}

impl DeliveryAuditor {
    /// Creates an empty auditor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-reserves capacity for `messages` registered messages across
    /// `cqids` connection queues. With the dense per-CQID storage there are
    /// no hash tables left to pre-size; reserving the CQID vector is all
    /// that is useful up front (the per-CQID record vectors grow amortised
    /// and contiguous).
    pub fn reserve(&mut self, _messages: usize, cqids: usize) {
        self.cqs.reserve(cqids);
    }

    /// Registers a message that is about to be transmitted. Must be called in
    /// transmit order.
    pub fn record_sent(&mut self, msg: &Message) {
        let cqid = msg.cqid() as usize;
        if self.cqid_slot.len() <= cqid {
            self.cqid_slot.resize(cqid + 1, NO_CQID);
        }
        let slot = match self.cqid_slot[cqid] {
            NO_CQID => {
                self.cqs.push(CqidAudit::new());
                let slot = (self.cqs.len() - 1) as u32;
                self.cqid_slot[cqid] = slot;
                slot
            }
            slot => slot,
        };
        let cq = &mut self.cqs[slot as usize];
        let ident = ident_of(msg);
        // Uniqueness check: free while registration order is strictly
        // increasing by identity (every workload generator's order); a
        // non-monotonic registration falls back to a scan.
        let unique = match cq.records.last() {
            None => true,
            Some(last) if cq.sorted && last.ident < ident => true,
            _ => {
                cq.sorted = false;
                cq.records.iter().all(|r| r.ident != ident)
            }
        };
        assert!(
            unique,
            "duplicate message identity registered: cqid {} ident {ident:#010x}",
            msg.cqid()
        );
        cq.records.push(SentRecord {
            ident,
            delivered: false,
            message: *msg,
        });
        self.registered += 1;
    }

    /// Number of messages registered for transmission.
    pub fn sent_count(&self) -> usize {
        self.registered
    }

    /// Classifies one delivered message and updates the counters.
    ///
    /// The hot path is the in-order delivery: one identity compare against
    /// the record under the CQID's cursor. Everything else (duplicates,
    /// out-of-order arrivals, never-sent identities) resolves by binary
    /// search over the send-ordered records.
    pub fn observe_delivery(&mut self, msg: &Message) -> DeliveryVerdict {
        let ident = ident_of(msg);
        let slot = match self.cqid_slot.get(msg.cqid() as usize) {
            Some(&slot) if slot != NO_CQID => slot,
            _ => {
                self.counts.data_failures += 1;
                return DeliveryVerdict::Unexpected;
            }
        };
        let cq = &mut self.cqs[slot as usize];
        let order = if cq.next_undelivered < cq.records.len()
            && cq.records[cq.next_undelivered].ident == ident
        {
            cq.next_undelivered
        } else {
            let found = if cq.sorted {
                cq.records.binary_search_by_key(&ident, |r| r.ident).ok()
            } else {
                cq.records.iter().position(|r| r.ident == ident)
            };
            match found {
                Some(i) => i,
                None => {
                    self.counts.data_failures += 1;
                    return DeliveryVerdict::Unexpected;
                }
            }
        };
        let record = &mut cq.records[order];
        if record.delivered {
            self.counts.duplicate_deliveries += 1;
            return DeliveryVerdict::Duplicate;
        }
        record.delivered = true;
        let intact = record.message == *msg;
        let was_gapped = cq.gapped();
        cq.delivered_count += 1;
        self.delivered_unique += 1;
        let in_order = order == cq.next_undelivered;
        // Advance the next-undelivered cursor over everything now delivered.
        while cq.next_undelivered < cq.records.len() && cq.records[cq.next_undelivered].delivered {
            cq.next_undelivered += 1;
        }
        match (was_gapped, cq.gapped()) {
            (false, true) => self.gapped_cqids += 1,
            (true, false) => self.gapped_cqids -= 1,
            _ => {}
        }

        if !intact {
            self.counts.data_failures += 1;
            return DeliveryVerdict::Corrupted;
        }
        if !in_order {
            self.counts.ordering_failures += 1;
            return DeliveryVerdict::OutOfOrder;
        }
        self.counts.clean_deliveries += 1;
        DeliveryVerdict::InOrder
    }

    /// Counters accumulated so far (losses not yet included).
    pub fn counts(&self) -> &FailureCounts {
        &self.counts
    }

    /// `true` while at least one CQID has an ordering gap open: a message
    /// was delivered while an earlier message of the same CQID is still
    /// missing. Gap-episode trackers (the fabric simulator's undetected-drop
    /// event counter) use this to count each drop episode exactly once, from
    /// the first out-of-order delivery until a replay fills the gap.
    pub fn has_open_gaps(&self) -> bool {
        self.gapped_cqids > 0
    }

    /// `true` once every registered message has been delivered at least
    /// once. The fabric engine consults this when its stall guard trips:
    /// a stalled fabric whose auditors all report `all_delivered` is a
    /// *post-delivery wedge* (control-plane replay churning after the last
    /// payload arrived), not a credit deadlock.
    pub fn all_delivered(&self) -> bool {
        self.delivered_unique == self.registered
    }

    /// Closes the audit: every sent-but-undelivered message is counted as
    /// lost. Returns the final counters.
    pub fn finalize(mut self) -> FailureCounts {
        self.counts.lost_messages += (self.registered - self.delivered_unique) as u64;
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rxl_flit::{MemOp, Message};

    fn req(cqid: u16, tag: u16) -> Message {
        Message::request(MemOp::RdCurr, tag as u64 * 64, cqid, tag)
    }

    fn data(cqid: u16, tag: u16, chunk: u8) -> Message {
        Message::data(cqid, tag, chunk, [chunk; 8])
    }

    #[test]
    fn clean_in_order_delivery() {
        let mut a = DeliveryAuditor::new();
        let msgs: Vec<Message> = (0..5).map(|i| req(1, i)).collect();
        for m in &msgs {
            a.record_sent(m);
        }
        for m in &msgs {
            assert_eq!(a.observe_delivery(m), DeliveryVerdict::InOrder);
        }
        let counts = a.finalize();
        assert!(counts.is_clean());
        assert_eq!(counts.clean_deliveries, 5);
    }

    #[test]
    fn duplicate_detection_matches_fig_5a() {
        // Requests A, B, C; C is delivered, then the retry replays B and C:
        // the second C is a duplicate.
        let mut a = DeliveryAuditor::new();
        let (ra, rb, rc) = (req(0, 0), req(1, 1), req(2, 2));
        for m in [&ra, &rb, &rc] {
            a.record_sent(m);
        }
        assert_eq!(a.observe_delivery(&ra), DeliveryVerdict::InOrder);
        assert_eq!(a.observe_delivery(&rc), DeliveryVerdict::InOrder); // different CQID → in order
        assert_eq!(a.observe_delivery(&rb), DeliveryVerdict::InOrder);
        assert_eq!(a.observe_delivery(&rc), DeliveryVerdict::Duplicate);
        let counts = a.finalize();
        assert_eq!(counts.duplicate_deliveries, 1);
        assert_eq!(counts.clean_deliveries, 3);
        assert_eq!(counts.lost_messages, 0);
    }

    #[test]
    fn same_cqid_reordering_matches_fig_5b() {
        // Data B and C share a CQID and must arrive in order; delivering C
        // before B is an ordering failure.
        let mut a = DeliveryAuditor::new();
        let b = data(7, 1, 0);
        let c = data(7, 2, 0);
        a.record_sent(&b);
        a.record_sent(&c);
        assert_eq!(a.observe_delivery(&c), DeliveryVerdict::OutOfOrder);
        assert_eq!(a.observe_delivery(&b), DeliveryVerdict::InOrder);
        let counts = a.finalize();
        assert_eq!(counts.ordering_failures, 1);
        assert_eq!(counts.clean_deliveries, 1);
    }

    #[test]
    fn different_cqids_may_interleave_freely() {
        let mut a = DeliveryAuditor::new();
        let m1 = data(1, 1, 0);
        let m2 = data(2, 2, 0);
        let m3 = data(1, 3, 0);
        for m in [&m1, &m2, &m3] {
            a.record_sent(m);
        }
        // Delivery order m2, m1, m3 violates nothing: CQID 1 still sees m1
        // before m3 and CQID 2 only has one message.
        assert_eq!(a.observe_delivery(&m2), DeliveryVerdict::InOrder);
        assert_eq!(a.observe_delivery(&m1), DeliveryVerdict::InOrder);
        assert_eq!(a.observe_delivery(&m3), DeliveryVerdict::InOrder);
        assert!(a.finalize().is_clean());
    }

    #[test]
    fn corruption_and_unexpected_messages_are_data_failures() {
        let mut a = DeliveryAuditor::new();
        let sent = req(3, 9);
        a.record_sent(&sent);
        // Same identity, different address → corrupted.
        let corrupted = Message::request(MemOp::RdCurr, 0xBAD, 3, 9);
        assert_eq!(a.observe_delivery(&corrupted), DeliveryVerdict::Corrupted);
        // Never-sent identity → unexpected.
        assert_eq!(a.observe_delivery(&req(9, 9)), DeliveryVerdict::Unexpected);
        let counts = a.finalize();
        assert_eq!(counts.data_failures, 2);
    }

    #[test]
    fn losses_are_counted_at_finalize() {
        let mut a = DeliveryAuditor::new();
        for i in 0..4 {
            a.record_sent(&req(0, i));
        }
        a.observe_delivery(&req(0, 0));
        a.observe_delivery(&req(0, 1));
        let counts = a.finalize();
        assert_eq!(counts.lost_messages, 2);
        assert_eq!(counts.clean_deliveries, 2);
    }

    #[test]
    fn data_chunks_with_distinct_indices_are_distinct_messages() {
        let mut a = DeliveryAuditor::new();
        a.record_sent(&data(1, 1, 0));
        a.record_sent(&data(1, 1, 1));
        assert_eq!(a.observe_delivery(&data(1, 1, 0)), DeliveryVerdict::InOrder);
        assert_eq!(a.observe_delivery(&data(1, 1, 1)), DeliveryVerdict::InOrder);
        assert!(a.finalize().is_clean());
    }

    #[test]
    fn out_of_order_then_gap_filled_recovers() {
        let mut a = DeliveryAuditor::new();
        for i in 0..3 {
            a.record_sent(&data(5, i, 0));
        }
        assert!(!a.has_open_gaps());
        assert_eq!(
            a.observe_delivery(&data(5, 1, 0)),
            DeliveryVerdict::OutOfOrder
        );
        assert!(a.has_open_gaps(), "gap opens on the out-of-order delivery");
        assert_eq!(a.observe_delivery(&data(5, 0, 0)), DeliveryVerdict::InOrder);
        assert!(!a.has_open_gaps(), "gap closes once the hole is filled");
        // After the gap is filled, the cursor has advanced past both.
        assert_eq!(a.observe_delivery(&data(5, 2, 0)), DeliveryVerdict::InOrder);
        assert!(!a.has_open_gaps());
        let counts = a.finalize();
        assert_eq!(counts.ordering_failures, 1);
        assert_eq!(counts.clean_deliveries, 2);
    }

    #[test]
    fn gaps_are_tracked_per_cqid_and_duplicates_do_not_reopen_them() {
        let mut a = DeliveryAuditor::new();
        for cq in [1u16, 2] {
            for i in 0..3 {
                a.record_sent(&data(cq, 10 * cq + i, 0));
            }
        }
        // Open gaps in both CQIDs.
        a.observe_delivery(&data(1, 12, 0));
        a.observe_delivery(&data(2, 22, 0));
        assert!(a.has_open_gaps());
        // Fill CQID 1 only — CQID 2 still gapped.
        a.observe_delivery(&data(1, 10, 0));
        a.observe_delivery(&data(1, 11, 0));
        assert!(a.has_open_gaps());
        // A duplicate delivery must not disturb gap accounting.
        assert_eq!(
            a.observe_delivery(&data(1, 12, 0)),
            DeliveryVerdict::Duplicate
        );
        assert!(a.has_open_gaps());
        // Fill CQID 2 — all gaps closed.
        a.observe_delivery(&data(2, 20, 0));
        a.observe_delivery(&data(2, 21, 0));
        assert!(!a.has_open_gaps());
    }

    #[test]
    #[should_panic]
    fn duplicate_registration_panics() {
        let mut a = DeliveryAuditor::new();
        a.record_sent(&req(1, 1));
        a.record_sent(&req(1, 1));
    }
}
