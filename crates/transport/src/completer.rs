//! The completing side of a transaction (a host or memory device servicing
//! coherent memory operations).

use std::collections::HashMap;

use rxl_flit::{MemOp, Message};

/// Services incoming requests against a simple backing store and produces the
/// response / data-header / data messages that flow back to the requester.
#[derive(Clone, Debug, Default)]
pub struct Completer {
    /// Backing store: cache-line address → 8-byte content (one chunk per
    /// line keeps flit counts small while preserving the protocol shape).
    memory: HashMap<u64, [u8; 8]>,
    /// Number of requests serviced.
    serviced: u64,
    /// Requests seen more than once with the same (cqid, tag) while the first
    /// is still being tracked — the transaction-layer symptom of Fig. 5a.
    duplicate_requests: u64,
    /// Recently seen request identities, for duplicate detection.
    seen: HashMap<(u16, u16), u64>,
}

impl Completer {
    /// Creates a completer with an empty backing store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-populates one cache line.
    pub fn write_line(&mut self, addr: u64, data: [u8; 8]) {
        self.memory.insert(addr, data);
    }

    /// Reads one cache line (zeros if never written).
    pub fn read_line(&self, addr: u64) -> [u8; 8] {
        self.memory.get(&addr).copied().unwrap_or([0u8; 8])
    }

    /// Number of requests serviced.
    pub fn serviced(&self) -> u64 {
        self.serviced
    }

    /// Number of duplicate requests observed.
    pub fn duplicate_requests(&self) -> u64 {
        self.duplicate_requests
    }

    /// Services one incoming message. Requests produce reply messages; all
    /// other message kinds are ignored (they flow the other way).
    pub fn service(&mut self, msg: &Message) -> Vec<Message> {
        let Message::Request {
            op,
            addr,
            cqid,
            tag,
        } = *msg
        else {
            return Vec::new();
        };
        let count = self.seen.entry((cqid, tag)).or_insert(0);
        *count += 1;
        if *count > 1 {
            self.duplicate_requests += 1;
        }
        self.serviced += 1;

        match op {
            MemOp::RdCurr | MemOp::RdShared | MemOp::RdOwn => {
                let data = self.read_line(addr);
                vec![
                    Message::response_ok(cqid, tag),
                    Message::DataHeader {
                        cqid,
                        tag,
                        chunks: 1,
                    },
                    Message::data(cqid, tag, 0, data),
                ]
            }
            MemOp::WrLine | MemOp::WrPtl => {
                // The write payload travels as data messages in a fuller
                // model; here the address doubles as content to keep the
                // protocol exchange three-legged without extra flits.
                self.memory.insert(addr, addr.to_le_bytes());
                vec![Message::response_ok(cqid, tag)]
            }
            MemOp::Invalidate => vec![Message::response_ok(cqid, tag)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_return_response_header_and_data() {
        let mut c = Completer::new();
        c.write_line(0x80, [7; 8]);
        let replies = c.service(&Message::request(MemOp::RdCurr, 0x80, 1, 5));
        assert_eq!(replies.len(), 3);
        assert!(matches!(replies[0], Message::Response { .. }));
        assert!(matches!(replies[1], Message::DataHeader { chunks: 1, .. }));
        match replies[2] {
            Message::Data { bytes, .. } => assert_eq!(bytes, [7; 8]),
            _ => panic!("expected data message"),
        }
        assert_eq!(c.serviced(), 1);
    }

    #[test]
    fn writes_return_only_a_response_and_update_memory() {
        let mut c = Completer::new();
        let replies = c.service(&Message::request(MemOp::WrLine, 0x100, 0, 1));
        assert_eq!(replies.len(), 1);
        assert_eq!(c.read_line(0x100), 0x100u64.to_le_bytes());
    }

    #[test]
    fn duplicate_requests_are_counted() {
        let mut c = Completer::new();
        let req = Message::request(MemOp::RdOwn, 0x40, 2, 9);
        c.service(&req);
        c.service(&req);
        assert_eq!(c.duplicate_requests(), 1);
        assert_eq!(c.serviced(), 2);
    }

    #[test]
    fn non_request_messages_are_ignored() {
        let mut c = Completer::new();
        assert!(c.service(&Message::response_ok(0, 0)).is_empty());
        assert!(c.service(&Message::data(0, 0, 0, [0; 8])).is_empty());
        assert_eq!(c.serviced(), 0);
    }

    #[test]
    fn unwritten_lines_read_as_zero() {
        let c = Completer::new();
        assert_eq!(c.read_line(0xDEAD), [0u8; 8]);
    }
}
