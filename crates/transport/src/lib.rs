//! # rxl-transport — Transaction-layer endpoints and failure auditing
//!
//! The paper defines a protocol failure as either corrupted data reaching the
//! application layer (`Fail_data`) or data reaching it in the wrong order
//! (`Fail_order`) — Section 7.1. This crate provides the transaction-layer
//! machinery that turns link-layer events into those failure categories:
//!
//! * [`audit`] — the delivery auditor: given the transmit-order ground truth,
//!   it classifies every delivered message as in-order, duplicate,
//!   out-of-order (within a CQID), or corrupted, and tallies missing ones,
//! * [`requester`] / [`completer`] — a request/response/data transaction
//!   engine (the CXL.mem-style three-message exchange of Section 2.2) used by
//!   the workload generators,
//! * [`coherence`] — a MESI-lite directory that demonstrates how duplicated
//!   or reordered requests corrupt coherence state (Section 4.2),
//! * [`failure`] — the failure counters shared by the simulator and the
//!   experiment harnesses.

pub mod audit;
pub mod coherence;
pub mod completer;
pub mod failure;
pub mod requester;

pub use audit::{mix64, DeliveryAuditor, DeliveryVerdict, FastMap, FxHasher};
pub use coherence::{CoherenceDirectory, CoherenceViolation, LineState};
pub use completer::Completer;
pub use failure::FailureCounts;
pub use requester::{OutstandingRequest, Requester};
