//! The requesting side of a transaction (a device or host issuing coherent
//! memory operations).

use std::collections::HashMap;

use rxl_flit::{MemOp, Message, RspStatus};

/// A request that has been issued but not yet completed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutstandingRequest {
    /// The operation issued.
    pub op: MemOp,
    /// The target address.
    pub addr: u64,
    /// The command queue it was issued on.
    pub cqid: u16,
    /// The assigned tag.
    pub tag: u16,
    /// Whether the response has arrived.
    pub response_seen: bool,
    /// Number of data chunks received so far.
    pub data_chunks_seen: u8,
    /// Number of data chunks expected (from the data header), if known.
    pub data_chunks_expected: Option<u8>,
}

impl OutstandingRequest {
    /// `true` once the response (and, for reads, all data) has arrived.
    pub fn complete(&self) -> bool {
        if !self.response_seen {
            return false;
        }
        if !self.op.expects_data() {
            return true;
        }
        match self.data_chunks_expected {
            Some(expected) => self.data_chunks_seen >= expected,
            None => false,
        }
    }
}

/// Anomalies the requester can observe in the completion stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompletionAnomaly {
    /// A completion arrived for a tag that has no outstanding request.
    UnknownTag {
        /// The command queue of the completion.
        cqid: u16,
        /// The unknown tag.
        tag: u16,
    },
    /// A response arrived twice for the same request.
    DuplicateResponse {
        /// The command queue of the completion.
        cqid: u16,
        /// The duplicated tag.
        tag: u16,
    },
    /// More data chunks arrived than the transfer announced.
    ExcessData {
        /// The command queue of the completion.
        cqid: u16,
        /// The affected tag.
        tag: u16,
    },
}

/// Issues requests with unique tags and matches completions against them.
#[derive(Clone, Debug, Default)]
pub struct Requester {
    next_tag: u16,
    outstanding: HashMap<(u16, u16), OutstandingRequest>,
    completed: u64,
    anomalies: Vec<CompletionAnomaly>,
}

impl Requester {
    /// Creates an idle requester.
    pub fn new() -> Self {
        Self::default()
    }

    /// Issues a request on `cqid`, returning the message to transmit.
    pub fn issue(&mut self, op: MemOp, addr: u64, cqid: u16) -> Message {
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1);
        self.outstanding.insert(
            (cqid, tag),
            OutstandingRequest {
                op,
                addr,
                cqid,
                tag,
                response_seen: false,
                data_chunks_seen: 0,
                data_chunks_expected: None,
            },
        );
        Message::request(op, addr, cqid, tag)
    }

    /// Number of requests still awaiting completion.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Number of fully completed requests.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Anomalies observed so far.
    pub fn anomalies(&self) -> &[CompletionAnomaly] {
        &self.anomalies
    }

    /// Consumes one completion-side message (response, data header or data
    /// chunk) arriving from the peer.
    pub fn consume(&mut self, msg: &Message) {
        match msg {
            Message::Response { cqid, tag, status } => {
                let Some(req) = self.outstanding.get_mut(&(*cqid, *tag)) else {
                    self.anomalies.push(CompletionAnomaly::UnknownTag {
                        cqid: *cqid,
                        tag: *tag,
                    });
                    return;
                };
                if req.response_seen {
                    self.anomalies.push(CompletionAnomaly::DuplicateResponse {
                        cqid: *cqid,
                        tag: *tag,
                    });
                    return;
                }
                req.response_seen = true;
                if *status != RspStatus::Success || !req.op.expects_data() {
                    // Failed requests and writes complete on the response.
                    req.data_chunks_expected = Some(0);
                }
                self.retire_if_complete(*cqid, *tag);
            }
            Message::DataHeader { cqid, tag, chunks } => {
                let Some(req) = self.outstanding.get_mut(&(*cqid, *tag)) else {
                    self.anomalies.push(CompletionAnomaly::UnknownTag {
                        cqid: *cqid,
                        tag: *tag,
                    });
                    return;
                };
                req.data_chunks_expected = Some(*chunks);
                self.retire_if_complete(*cqid, *tag);
            }
            Message::Data { cqid, tag, .. } => {
                let Some(req) = self.outstanding.get_mut(&(*cqid, *tag)) else {
                    self.anomalies.push(CompletionAnomaly::UnknownTag {
                        cqid: *cqid,
                        tag: *tag,
                    });
                    return;
                };
                req.data_chunks_seen += 1;
                if let Some(expected) = req.data_chunks_expected {
                    if req.data_chunks_seen > expected {
                        self.anomalies.push(CompletionAnomaly::ExcessData {
                            cqid: *cqid,
                            tag: *tag,
                        });
                        return;
                    }
                }
                self.retire_if_complete(*cqid, *tag);
            }
            Message::Request { .. } => {
                // Requests never flow towards the requester in this model.
            }
        }
    }

    fn retire_if_complete(&mut self, cqid: u16, tag: u16) {
        if let Some(req) = self.outstanding.get(&(cqid, tag)) {
            if req.complete() {
                self.outstanding.remove(&(cqid, tag));
                self.completed += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_completes_on_the_response_alone() {
        let mut r = Requester::new();
        let req = r.issue(MemOp::WrLine, 0x1000, 2);
        assert_eq!(r.outstanding(), 1);
        r.consume(&Message::response_ok(2, req.tag()));
        assert_eq!(r.outstanding(), 0);
        assert_eq!(r.completed(), 1);
        assert!(r.anomalies().is_empty());
    }

    #[test]
    fn read_requires_response_header_and_data() {
        let mut r = Requester::new();
        let req = r.issue(MemOp::RdCurr, 0x2000, 1);
        let tag = req.tag();
        r.consume(&Message::response_ok(1, tag));
        assert_eq!(r.outstanding(), 1, "data still missing");
        r.consume(&Message::DataHeader {
            cqid: 1,
            tag,
            chunks: 2,
        });
        r.consume(&Message::data(1, tag, 0, [0; 8]));
        assert_eq!(r.outstanding(), 1);
        r.consume(&Message::data(1, tag, 1, [1; 8]));
        assert_eq!(r.outstanding(), 0);
        assert_eq!(r.completed(), 1);
    }

    #[test]
    fn duplicate_responses_are_flagged() {
        let mut r = Requester::new();
        let req = r.issue(MemOp::RdOwn, 0x3000, 0);
        let tag = req.tag();
        r.consume(&Message::response_ok(0, tag));
        r.consume(&Message::response_ok(0, tag));
        assert_eq!(
            r.anomalies(),
            &[CompletionAnomaly::DuplicateResponse { cqid: 0, tag }]
        );
    }

    #[test]
    fn unknown_tags_are_flagged() {
        let mut r = Requester::new();
        r.consume(&Message::response_ok(5, 77));
        assert_eq!(
            r.anomalies(),
            &[CompletionAnomaly::UnknownTag { cqid: 5, tag: 77 }]
        );
    }

    #[test]
    fn excess_data_is_flagged() {
        let mut r = Requester::new();
        let req = r.issue(MemOp::RdShared, 0x4000, 3);
        let tag = req.tag();
        r.consume(&Message::DataHeader {
            cqid: 3,
            tag,
            chunks: 1,
        });
        r.consume(&Message::data(3, tag, 0, [0; 8]));
        r.consume(&Message::data(3, tag, 1, [1; 8]));
        assert!(r
            .anomalies()
            .contains(&CompletionAnomaly::ExcessData { cqid: 3, tag }));
    }

    #[test]
    fn tags_are_unique_across_requests() {
        let mut r = Requester::new();
        let a = r.issue(MemOp::RdCurr, 0, 0);
        let b = r.issue(MemOp::RdCurr, 64, 0);
        assert_ne!(a.tag(), b.tag());
        assert_eq!(r.outstanding(), 2);
    }
}
