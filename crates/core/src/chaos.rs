//! Chaos bridge: stress a [`FabricSpec`]'s projection with fault injection.
//!
//! [`FabricSpec::simulate`] backs the analytic projection with simulation
//! evidence at a *stationary* accelerated BER. This module asks the next
//! question: what happens to the same fabric when the channel is **not**
//! stationary — when one uplink takes a BER storm mid-run? The canonical
//! stress instantiates exactly the ring fabric of `simulate`, hits one trunk
//! on the session path with a configurable storm, and reports per-epoch
//! failure counts plus availability through the `rxl-chaos` scenario
//! Monte-Carlo.

use rxl_chaos::{ChaosMonteCarlo, ChaosMonteCarloReport, Scenario};
use rxl_fabric::{FabricTopology, FabricWorkload};
use rxl_telemetry::{IncidentReplay, IncidentReport, SloSpec};

use crate::fabric::{FabricSimOptions, FabricSpec};

/// Parameters of the canonical single-uplink BER-storm stress.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StormSpec {
    /// Slot the storm starts.
    pub start_slot: u64,
    /// Storm length in slots.
    pub duration: u64,
    /// Multiplicative BER acceleration while the storm is active.
    pub factor: f64,
}

impl Default for StormSpec {
    fn default() -> Self {
        StormSpec {
            start_slot: 500,
            duration: 1_000,
            factor: 30.0,
        }
    }
}

/// Scenario Monte-Carlo evidence for a [`FabricSpec`] under a BER storm.
#[derive(Clone, Debug)]
pub struct ChaosEvidence {
    /// Label of the generated topology.
    pub topology: String,
    /// Sessions instantiated.
    pub sessions: usize,
    /// Label of the scenario that ran.
    pub scenario: String,
    /// Aggregated per-epoch and availability results.
    pub report: ChaosMonteCarloReport,
}

/// Incident-replay evidence for a [`FabricSpec`] under a BER storm: the
/// same stress as [`FabricSpec::simulate_storm`], scored as an SLO
/// incident through `rxl-telemetry`'s windowed burn accounting.
#[derive(Clone, Debug)]
pub struct IncidentEvidence {
    /// Label of the generated topology.
    pub topology: String,
    /// Sessions instantiated.
    pub sessions: usize,
    /// Label of the scenario that ran.
    pub scenario: String,
    /// Windowed telemetry, burn-rate series and incident score.
    pub report: IncidentReport,
}

impl FabricSpec {
    /// The canonical storm scenario for this spec on `topology`: `storm`
    /// applied to the trunk the first session's traffic enters the ring
    /// through (clockwise from its host's switch), falling back to the
    /// host's attachment link on span-0 rings.
    fn storm_scenario(&self, topology: &FabricTopology, storm: &StormSpec) -> Scenario {
        let host_switch = topology.endpoints[topology.sessions[0].host].switch;
        let next = (host_switch + 1) % topology.switch_count();
        let link = topology
            .trunk_between(host_switch, next)
            .filter(|_| self.switch_levels > 1)
            .unwrap_or_else(|| topology.endpoint_link(topology.sessions[0].host));

        Scenario::named(format!(
            "BER storm ×{} on {}",
            storm.factor,
            topology.describe_link(link)
        ))
        .ber_storm(storm.start_slot, storm.duration, vec![link], storm.factor)
    }

    /// Runs the canonical BER-storm stress against this spec: the same
    /// accelerated ring fabric as [`FabricSpec::simulate`], with `storm`
    /// applied to one trunk on the first session's path (or to the first
    /// host's attachment link when the spec has no switched trunk to storm).
    /// Epoch boundaries fall at the storm's start and end, so
    /// `report.epochs` separates before / during / after failure counts.
    pub fn simulate_storm(&self, opts: &FabricSimOptions, storm: &StormSpec) -> ChaosEvidence {
        let (topology, _variant, config) = self.instantiate(opts);
        let sessions = topology.session_count();
        let name = topology.name.clone();
        let scenario = self.storm_scenario(&topology, storm);
        let scenario_name = scenario.name.clone();

        let workload =
            FabricWorkload::symmetric(sessions, opts.messages_per_session, 8, opts.base_seed);
        let report = ChaosMonteCarlo::new(topology, config, scenario, opts.trials).run(&workload);
        ChaosEvidence {
            topology: name,
            sessions,
            scenario: scenario_name,
            report,
        }
    }

    /// Replays the canonical BER-storm stress as a scored SLO incident:
    /// per-window latency/availability, error-budget burn rates with
    /// fast/slow alert states, and an incident score (burn during vs after
    /// the storm, peak burn, time to recovery). `window_slots` sets the
    /// telemetry window length; `slo` the objectives and alert policy.
    pub fn replay_storm_incident(
        &self,
        opts: &FabricSimOptions,
        storm: &StormSpec,
        window_slots: u64,
        slo: SloSpec,
    ) -> IncidentEvidence {
        let (topology, _variant, config) = self.instantiate(opts);
        let sessions = topology.session_count();
        let name = topology.name.clone();
        let scenario = self.storm_scenario(&topology, storm);
        let scenario_name = scenario.name.clone();

        let workload =
            FabricWorkload::symmetric(sessions, opts.messages_per_session, 8, opts.base_seed);
        let replay =
            IncidentReplay::new(topology, config, scenario, opts.trials, window_slots, slo);
        IncidentEvidence {
            topology: name,
            sessions,
            scenario: scenario_name,
            report: replay.run(&workload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolKind;

    #[test]
    fn rxl_storm_stress_stays_clean() {
        let spec = FabricSpec::new(ProtocolKind::Rxl, 1_000, 2);
        let opts = FabricSimOptions {
            ber: 1e-5,
            sessions: 3,
            messages_per_session: 400,
            trials: 2,
            base_seed: 9,
        };
        let ev = spec.simulate_storm(&opts, &StormSpec::default());
        assert_eq!(ev.report.trials, 2);
        assert!(ev.report.failures.is_clean(), "{:?}", ev.report.failures);
        assert_eq!(ev.report.undetected_drop_events, 0);
        assert_eq!(ev.report.availability_mean(), 1.0);
        assert!(ev.scenario.contains("BER storm"));
        // Storm boundaries produce at least before/during epochs.
        assert!(ev.report.epochs.len() >= 2, "{:?}", ev.report.epochs.len());
    }

    #[test]
    fn storm_incident_replay_burns_and_recovers() {
        let spec = FabricSpec::new(ProtocolKind::Rxl, 1_000, 2);
        let opts = FabricSimOptions {
            ber: 1e-5,
            sessions: 3,
            messages_per_session: 400,
            trials: 2,
            base_seed: 9,
        };
        let ev = spec.replay_storm_incident(&opts, &StormSpec::default(), 250, SloSpec::default());
        assert_eq!(ev.report.aggregate.trials, 2);
        assert!(!ev.report.windows.is_empty());
        let score = ev.report.score.expect("storm anchors an interval");
        assert_eq!(score.incident_start, 500);
        assert_eq!(score.incident_end, 1_500);
        assert_eq!(ev.report.stats.len(), ev.report.burn.len());
        // RXL rides the storm out cleanly, so the budget never burns hot.
        assert!(
            score.peak_burn <= ev.report.slo.fast_burn,
            "peak burn {}",
            score.peak_burn
        );
    }

    #[test]
    fn depth_one_specs_storm_the_attachment_link() {
        let spec = FabricSpec::new(ProtocolKind::Rxl, 16, 1);
        let opts = FabricSimOptions {
            ber: 1e-5,
            sessions: 1,
            messages_per_session: 60,
            trials: 1,
            base_seed: 4,
        };
        let ev = spec.simulate_storm(
            &opts,
            &StormSpec {
                start_slot: 10,
                duration: 50,
                factor: 100.0,
            },
        );
        assert!(ev.scenario.contains("endpoint"), "{}", ev.scenario);
        assert!(ev.report.failures.is_clean());
    }
}
