//! Protocol stack configuration.

use rxl_crc::isn::IsnMode;

/// Which protocol stack an endpoint speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ProtocolKind {
    /// Baseline CXL 3.x: link-layer CRC, explicit (multiplexed) FSN.
    Cxl,
    /// RXL: transport-layer ECRC with the Implicit Sequence Number.
    #[default]
    Rxl,
}

impl ProtocolKind {
    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Cxl => "CXL",
            ProtocolKind::Rxl => "RXL",
        }
    }
}

/// Configuration of one protocol-stack session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StackConfig {
    /// Which protocol the session speaks.
    pub kind: ProtocolKind,
    /// How the sequence number is folded into the CRC (RXL only).
    pub isn_mode: IsnMode,
    /// Width of the sequence space in bits.
    pub seq_bits: u32,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            kind: ProtocolKind::Rxl,
            isn_mode: IsnMode::default(),
            seq_bits: 10,
        }
    }
}

impl StackConfig {
    /// An RXL session with default parameters.
    pub fn rxl() -> Self {
        Self::default()
    }

    /// A baseline CXL session.
    pub fn cxl() -> Self {
        StackConfig {
            kind: ProtocolKind::Cxl,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_rxl_with_ten_bit_sequences() {
        let cfg = StackConfig::default();
        assert_eq!(cfg.kind, ProtocolKind::Rxl);
        assert_eq!(cfg.seq_bits, 10);
        assert_eq!(StackConfig::cxl().kind, ProtocolKind::Cxl);
        assert_eq!(StackConfig::rxl(), StackConfig::default());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ProtocolKind::Cxl.name(), "CXL");
        assert_eq!(ProtocolKind::Rxl.name(), "RXL");
    }
}
