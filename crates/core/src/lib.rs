//! # rxl-core — The paper's contribution as a library
//!
//! This crate packages the Implicit Sequence Number (ISN) mechanism and the
//! RXL protocol stack behind a small, session-oriented API:
//!
//! * [`stack`] — [`RxlStack`] and [`CxlStack`]: one endpoint's send/receive
//!   session at flit granularity. The RXL stack binds every transmitted flit
//!   to a sequence number through the ISN ECRC and rejects anything that is
//!   corrupted, dropped-ahead-of, or replayed; the CXL stack reproduces the
//!   baseline behaviour (explicit FSN checks only when the header carries
//!   one) for comparison.
//! * [`config`] — [`StackConfig`] / [`ProtocolKind`]: which protocol, which
//!   ISN folding mode, how many sequence bits.
//! * [`fabric`] — [`FabricSpec`]: projecting the paper's per-device FIT
//!   analysis onto whole multi-node fabrics (how often does a 16K-GPU
//!   training job see an interconnect-induced failure?), and
//!   [`FabricSpec::simulate`]: backing that projection with `rxl-fabric`
//!   discrete-event simulation evidence at an accelerated BER.
//! * [`chaos`] — [`FabricSpec::simulate_storm`]: stressing the same fabric
//!   with `rxl-chaos` fault injection (a BER storm on one uplink) and
//!   reporting per-epoch failure counts plus availability.
//! * [`load`] — [`FabricSpec::simulate_load`]: pacing open-loop traffic
//!   into the same fabric across an offered-load ladder (`rxl-load`) and
//!   reporting latency-vs-load curves with a detected saturation knee.
//!
//! The lower layers remain available as independent crates (`rxl-crc`,
//! `rxl-fec`, `rxl-flit`, `rxl-link`, `rxl-switch`, `rxl-sim`) for users who
//! need the mechanisms rather than the sessions.
//!
//! # Quickstart
//!
//! ```
//! use rxl_core::{RxlStack, ReceiveError};
//! use rxl_flit::{Flit256, FlitHeader, MemOp, Message};
//!
//! let mut sender = RxlStack::new();
//! let mut receiver = RxlStack::new();
//!
//! // Two flits leave the sender...
//! let mut flit_a = Flit256::new(FlitHeader::ack(0));
//! flit_a.pack_messages(&[Message::request(MemOp::RdCurr, 0x1000, 0, 0)]).unwrap();
//! let wire_a = sender.send(&flit_a);
//! let wire_b = sender.send(&flit_a);
//!
//! // ...but the first one is silently dropped. The receiver immediately
//! // notices when the second one arrives.
//! assert!(matches!(
//!     receiver.receive(&wire_b),
//!     Err(ReceiveError::SequenceOrDataMismatch)
//! ));
//! // Once the dropped flit is replayed, in-order delivery resumes.
//! assert!(receiver.receive(&wire_a).is_ok());
//! assert!(receiver.receive(&wire_b).is_ok());
//! ```

pub mod chaos;
pub mod config;
pub mod fabric;
pub mod load;
pub mod stack;

pub use chaos::{ChaosEvidence, StormSpec};
pub use config::{ProtocolKind, StackConfig};
pub use fabric::{FabricReliability, FabricSimEvidence, FabricSimOptions, FabricSpec};
pub use load::{LoadEvidence, LoadSweepSpec, RequestEvidence, RequestSweepSpec};
pub use stack::{CxlStack, ReceiveError, RxlStack};
