//! Fabric-level reliability projection.
//!
//! The paper motivates RXL with fleet-scale incidents (Llama-3.1 training
//! interruptions, the Delta system's 6.9-hour NVLink MTBE). This module
//! projects the per-device FIT analysis of Section 7.1 onto whole fabrics so
//! examples can answer questions like "how often would a 16K-accelerator job
//! be interrupted by an undetected interconnect ordering failure?".

use rxl_analysis::ReliabilityModel;

use crate::config::ProtocolKind;

/// Description of a scaled-out fabric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FabricSpec {
    /// Protocol the fabric runs.
    pub kind: ProtocolKind,
    /// Number of devices (accelerators) attached to the fabric.
    pub devices: u64,
    /// Switching levels between any host–device pair.
    pub switch_levels: u32,
    /// The per-link reliability operating point.
    pub model: ReliabilityModel,
}

/// Projected reliability of a fabric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FabricReliability {
    /// FIT (failures per 10⁹ hours) of a single device's connection.
    pub per_device_fit: f64,
    /// FIT of the whole fabric (any device failing).
    pub fabric_fit: f64,
    /// Mean time between failures for the whole fabric, in hours.
    pub fabric_mtbf_hours: f64,
    /// Expected number of failures during a job of the given duration.
    pub failures_per_job: f64,
    /// The job duration used for `failures_per_job`, in hours.
    pub job_hours: f64,
}

impl FabricSpec {
    /// A fabric at the paper's CXL 3.0 ×16 operating point.
    pub fn new(kind: ProtocolKind, devices: u64, switch_levels: u32) -> Self {
        FabricSpec {
            kind,
            devices,
            switch_levels,
            model: ReliabilityModel::cxl3_x16(),
        }
    }

    /// FIT of one device's connection under this fabric's protocol.
    pub fn per_device_fit(&self) -> f64 {
        match self.kind {
            ProtocolKind::Cxl => self.model.fit_cxl_levels(self.switch_levels),
            ProtocolKind::Rxl => self.model.fit_rxl_levels(self.switch_levels),
        }
    }

    /// Projects reliability for a job of `job_hours` hours using the whole
    /// fabric.
    pub fn project(&self, job_hours: f64) -> FabricReliability {
        let per_device_fit = self.per_device_fit();
        let fabric_fit = per_device_fit * self.devices as f64;
        let fabric_mtbf_hours = if fabric_fit > 0.0 {
            1e9 / fabric_fit
        } else {
            f64::INFINITY
        };
        FabricReliability {
            per_device_fit,
            fabric_fit,
            fabric_mtbf_hours,
            failures_per_job: fabric_fit * job_hours / 1e9,
            job_hours,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cxl_fabric_at_scale_fails_constantly_rxl_practically_never() {
        // A Llama-3.1-scale job: 16K accelerators, 54 days, one switch level.
        let job_hours = 54.0 * 24.0;
        let cxl = FabricSpec::new(ProtocolKind::Cxl, 16_384, 1).project(job_hours);
        let rxl = FabricSpec::new(ProtocolKind::Rxl, 16_384, 1).project(job_hours);

        // Baseline CXL: the projected ordering-failure MTBF is far below one
        // hour — the job cannot finish without hitting the failure mode.
        assert!(cxl.fabric_mtbf_hours < 1e-3);
        assert!(cxl.failures_per_job > 1e6);

        // RXL: a vanishing number of expected failures over the whole job,
        // and a fabric-level MTBF measured in millennia.
        assert!(rxl.failures_per_job < 1e-3);
        assert!(rxl.fabric_mtbf_hours > 1e7);
    }

    #[test]
    fn direct_connections_are_reliable_for_both_protocols() {
        let cxl = FabricSpec::new(ProtocolKind::Cxl, 8, 0).project(1000.0);
        let rxl = FabricSpec::new(ProtocolKind::Rxl, 8, 0).project(1000.0);
        assert!(cxl.failures_per_job < 1e-6);
        assert!(rxl.failures_per_job < 1e-6);
    }

    #[test]
    fn fabric_fit_scales_linearly_with_device_count() {
        let small = FabricSpec::new(ProtocolKind::Cxl, 100, 1).project(1.0);
        let large = FabricSpec::new(ProtocolKind::Cxl, 200, 1).project(1.0);
        assert!((large.fabric_fit / small.fabric_fit - 2.0).abs() < 1e-9);
    }

    #[test]
    fn projection_reports_the_job_duration() {
        let p = FabricSpec::new(ProtocolKind::Rxl, 4, 2).project(42.0);
        assert_eq!(p.job_hours, 42.0);
        assert!(p.per_device_fit > 0.0);
    }
}
