//! Fabric-level reliability projection.
//!
//! The paper motivates RXL with fleet-scale incidents (Llama-3.1 training
//! interruptions, the Delta system's 6.9-hour NVLink MTBE). This module
//! projects the per-device FIT analysis of Section 7.1 onto whole fabrics so
//! examples can answer questions like "how often would a 16K-accelerator job
//! be interrupted by an undetected interconnect ordering failure?".

use rxl_analysis::ReliabilityModel;
use rxl_fabric::{
    FabricConfig, FabricMonteCarlo, FabricMonteCarloReport, FabricTopology, FabricWorkload,
    FitCrosscheck, RoutingTable,
};
use rxl_link::{ChannelErrorModel, ProtocolVariant};

use crate::config::ProtocolKind;

/// Description of a scaled-out fabric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FabricSpec {
    /// Protocol the fabric runs.
    pub kind: ProtocolKind,
    /// Number of devices (accelerators) attached to the fabric.
    pub devices: u64,
    /// Switching levels between any host–device pair.
    pub switch_levels: u32,
    /// Virtual channels per trunk lane in the simulated fabric. `1`
    /// reproduces the pre-VC engine (and its ring(span ≥ 2) credit
    /// deadlock); `≥ 2` installs the dateline escape VCs.
    pub vc_count: usize,
    /// Route adaptively over the minimal candidate set (requires
    /// `vc_count ≥ 3`; escape VCs stay deterministic).
    pub adaptive: bool,
    /// The per-link reliability operating point.
    pub model: ReliabilityModel,
}

/// Projected reliability of a fabric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FabricReliability {
    /// FIT (failures per 10⁹ hours) of a single device's connection.
    pub per_device_fit: f64,
    /// FIT of the whole fabric (any device failing).
    pub fabric_fit: f64,
    /// Mean time between failures for the whole fabric, in hours.
    pub fabric_mtbf_hours: f64,
    /// Expected number of failures during a job of the given duration.
    pub failures_per_job: f64,
    /// The job duration used for `failures_per_job`, in hours.
    pub job_hours: f64,
}

/// Parameters of a [`FabricSpec::simulate`] run: how hard to accelerate the
/// channel and how much fabric to actually instantiate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FabricSimOptions {
    /// Accelerated per-link BER the simulated fabric runs at (the real
    /// operating point's failure events are ~10²⁰× too rare to observe in
    /// software).
    pub ber: f64,
    /// Target number of concurrent host–device sessions to instantiate
    /// (rounded up to fill the generated topology's switches evenly).
    pub sessions: usize,
    /// Messages per session per direction.
    pub messages_per_session: usize,
    /// Monte-Carlo trials, sharded across worker threads.
    pub trials: u64,
    /// Base seed; every trial derives its own seed deterministically.
    pub base_seed: u64,
}

impl Default for FabricSimOptions {
    fn default() -> Self {
        FabricSimOptions {
            ber: 1e-4,
            sessions: 8,
            messages_per_session: 600,
            trials: 8,
            base_seed: 0xFA_B51C,
        }
    }
}

/// Simulation evidence for a fabric projection: the raw Monte-Carlo report
/// plus the empirical-vs-analytic comparison at the accelerated operating
/// point.
#[derive(Clone, Debug)]
pub struct FabricSimEvidence {
    /// Label of the generated topology.
    pub topology: String,
    /// Sessions actually instantiated (≥ the requested target).
    pub sessions: usize,
    /// Aggregate simulation results.
    pub report: FabricMonteCarloReport,
    /// Per-device empirical-vs-analytic FIT comparison at the accelerated
    /// BER (both sides use the measured drop rate and coalescing fraction).
    pub crosscheck: FitCrosscheck,
    /// `crosscheck.empirical_fit` scaled to the whole fabric
    /// (`devices` × per-device FIT).
    pub empirical_fabric_fit: f64,
    /// `crosscheck.analytic_fit` scaled to the whole fabric — by
    /// construction identical to `FabricSpec::project` evaluated with the
    /// measured accelerated-point model.
    pub analytic_fabric_fit: f64,
}

impl FabricSpec {
    /// A fabric at the paper's CXL 3.0 ×16 operating point.
    pub fn new(kind: ProtocolKind, devices: u64, switch_levels: u32) -> Self {
        FabricSpec {
            kind,
            devices,
            switch_levels,
            vc_count: 1,
            adaptive: false,
            model: ReliabilityModel::cxl3_x16(),
        }
    }

    /// Sets the number of virtual channels per trunk lane in simulation.
    pub fn with_vc_count(mut self, vc_count: usize) -> Self {
        self.vc_count = vc_count;
        self
    }

    /// Enables minimal-adaptive routing in simulation (needs
    /// `vc_count ≥ 3`).
    pub fn with_adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// FIT of one device's connection under this fabric's protocol.
    pub fn per_device_fit(&self) -> f64 {
        match self.kind {
            ProtocolKind::Cxl => self.model.fit_cxl_levels(self.switch_levels),
            ProtocolKind::Rxl => self.model.fit_rxl_levels(self.switch_levels),
        }
    }

    /// Projects reliability for a job of `job_hours` hours using the whole
    /// fabric.
    pub fn project(&self, job_hours: f64) -> FabricReliability {
        let per_device_fit = self.per_device_fit();
        let fabric_fit = per_device_fit * self.devices as f64;
        let fabric_mtbf_hours = if fabric_fit > 0.0 {
            1e9 / fabric_fit
        } else {
            f64::INFINITY
        };
        FabricReliability {
            per_device_fit,
            fabric_fit,
            fabric_mtbf_hours,
            failures_per_job: fabric_fit * job_hours / 1e9,
            job_hours,
        }
    }

    /// Instantiates the canonical accelerated-BER ring fabric this spec's
    /// simulation evidence runs on: the topology, protocol variant and trial
    /// configuration shared by [`Self::simulate`] and the chaos bridge
    /// (`Self::simulate_storm`).
    pub(crate) fn instantiate(
        &self,
        opts: &FabricSimOptions,
    ) -> (FabricTopology, ProtocolVariant, FabricConfig) {
        let levels = self.switch_levels.max(1);
        let span = (levels - 1) as usize;
        // One host/device pair per switch keeps the ring's trunks at (or
        // below) their one-flit-per-slot-per-direction capacity for shallow
        // spans, so the measured coalescing fraction is not an artefact of
        // sustained congestion; the ring also needs at least 2×span switches
        // for `span` to be the shortest path. Very large session targets cap
        // at 64 switches and stack extra pairs per switch instead.
        let switches = (2 * span).max(3).max(opts.sessions.min(64));
        let pairs = opts.sessions.div_ceil(switches).max(1);
        let topology = FabricTopology::ring(switches, pairs, span);

        let variant = match self.kind {
            ProtocolKind::Cxl => ProtocolVariant::CxlPiggyback,
            ProtocolKind::Rxl => ProtocolVariant::Rxl,
        };
        let ack_coalescing = if self.model.p_coalescing > 0.0 {
            (1.0 / self.model.p_coalescing).round().max(1.0) as u32
        } else {
            u32::MAX
        };
        let config = FabricConfig {
            ack_coalescing,
            ..FabricConfig::new(variant)
        }
        .with_channel(ChannelErrorModel::random(opts.ber))
        .with_seed(opts.base_seed)
        .with_vc_count(self.vc_count)
        .with_adaptive(self.adaptive);
        (topology, variant, config)
    }

    /// Gathers independent simulation evidence for this spec's analytic
    /// projection by running the `rxl-fabric` discrete-event simulator at an
    /// accelerated BER.
    ///
    /// A ring fabric whose every session crosses exactly
    /// `switch_levels.max(1)` switches is instantiated with (at least)
    /// `opts.sessions` concurrent host–device sessions, each driving real
    /// link/FEC/CRC state machines through shared silent-drop switches. The
    /// aggregated failure counts become an empirical per-device FIT that is
    /// compared — via [`FitCrosscheck`] — against this spec's own analytic
    /// formula evaluated at the *measured* accelerated operating point (the
    /// measured per-hop drop rate standing in for the PCIe `FER_UC` bound,
    /// the measured piggybacking fraction for `p_coalescing`).
    ///
    /// Direct connections (`switch_levels == 0`) have no fabric to simulate,
    /// so they are simulated at depth 1, the shallowest switched path.
    pub fn simulate(&self, opts: &FabricSimOptions) -> FabricSimEvidence {
        let levels = self.switch_levels.max(1);
        let (topology, variant, config) = self.instantiate(opts);
        let name = topology.name.clone();
        let sessions = topology.session_count();

        let routing = RoutingTable::new(&topology);
        let hops = routing
            .uniform_session_depth(&topology)
            .expect("ring sessions share one depth");
        debug_assert_eq!(hops, levels);

        let workload =
            FabricWorkload::symmetric(sessions, opts.messages_per_session, 8, opts.base_seed);
        let report = FabricMonteCarlo::new(topology, config, opts.trials).run(&workload);
        let crosscheck = FitCrosscheck::with_model(&report, variant, hops, opts.ber, &self.model);

        // The analytic side of the crosscheck is, by construction, exactly
        // this spec evaluated at the measured accelerated operating point:
        let accelerated = FabricSpec {
            model: ReliabilityModel {
                ber: opts.ber,
                fer_uc: crosscheck.measured_drop_rate,
                p_coalescing: crosscheck.measured_p_coalescing,
                ..self.model
            },
            switch_levels: levels,
            ..*self
        };
        debug_assert!(
            (accelerated.per_device_fit() - crosscheck.analytic_fit).abs()
                <= 1e-9 * crosscheck.analytic_fit.abs().max(1.0),
            "crosscheck must evaluate the spec's own projection"
        );

        FabricSimEvidence {
            topology: name,
            sessions,
            empirical_fabric_fit: crosscheck.empirical_fit * self.devices as f64,
            analytic_fabric_fit: accelerated.project(1.0).fabric_fit,
            report,
            crosscheck,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cxl_fabric_at_scale_fails_constantly_rxl_practically_never() {
        // A Llama-3.1-scale job: 16K accelerators, 54 days, one switch level.
        let job_hours = 54.0 * 24.0;
        let cxl = FabricSpec::new(ProtocolKind::Cxl, 16_384, 1).project(job_hours);
        let rxl = FabricSpec::new(ProtocolKind::Rxl, 16_384, 1).project(job_hours);

        // Baseline CXL: the projected ordering-failure MTBF is far below one
        // hour — the job cannot finish without hitting the failure mode.
        assert!(cxl.fabric_mtbf_hours < 1e-3);
        assert!(cxl.failures_per_job > 1e6);

        // RXL: a vanishing number of expected failures over the whole job,
        // and a fabric-level MTBF measured in millennia.
        assert!(rxl.failures_per_job < 1e-3);
        assert!(rxl.fabric_mtbf_hours > 1e7);
    }

    #[test]
    fn direct_connections_are_reliable_for_both_protocols() {
        let cxl = FabricSpec::new(ProtocolKind::Cxl, 8, 0).project(1000.0);
        let rxl = FabricSpec::new(ProtocolKind::Rxl, 8, 0).project(1000.0);
        assert!(cxl.failures_per_job < 1e-6);
        assert!(rxl.failures_per_job < 1e-6);
    }

    #[test]
    fn fabric_fit_scales_linearly_with_device_count() {
        let small = FabricSpec::new(ProtocolKind::Cxl, 100, 1).project(1.0);
        let large = FabricSpec::new(ProtocolKind::Cxl, 200, 1).project(1.0);
        assert!((large.fabric_fit / small.fabric_fit - 2.0).abs() < 1e-9);
    }

    #[test]
    fn simulate_backs_rxl_projection_with_clean_fabric_evidence() {
        let spec = FabricSpec::new(ProtocolKind::Rxl, 1_000, 2);
        let opts = FabricSimOptions {
            ber: 1e-4,
            sessions: 3,
            messages_per_session: 90,
            trials: 2,
            base_seed: 5,
        };
        let ev = spec.simulate(&opts);
        assert!(ev.sessions >= 3);
        assert_eq!(ev.report.trials, 2);
        assert_eq!(ev.report.drained_trials, 2);
        // RXL: every silent drop is retried; nothing reaches the
        // application out of order, so the empirical FIT is zero and the
        // analytic projection is ~2⁻⁶⁴ of the drop rate — agreement is
        // immediate.
        assert!(ev.report.failures.is_clean(), "{:?}", ev.report.failures);
        assert_eq!(ev.crosscheck.undetected_drop_events, 0);
        assert!(ev.crosscheck.agrees_within(3.0));
        assert_eq!(ev.empirical_fabric_fit, 0.0);
        assert!(ev.analytic_fabric_fit >= 0.0);
        assert!(ev.topology.contains("ring"));
    }

    #[test]
    fn simulate_maps_switch_levels_onto_the_ring_depth() {
        let opts = FabricSimOptions {
            ber: 1e-4,
            sessions: 1,
            messages_per_session: 30,
            trials: 1,
            base_seed: 1,
        };
        for levels in [0u32, 1, 3] {
            let ev = FabricSpec::new(ProtocolKind::Cxl, 16, levels).simulate(&opts);
            assert_eq!(ev.crosscheck.path_switches, levels.max(1));
        }
    }

    #[test]
    fn projection_reports_the_job_duration() {
        let p = FabricSpec::new(ProtocolKind::Rxl, 4, 2).project(42.0);
        assert_eq!(p.job_hours, 42.0);
        assert!(p.per_device_fit > 0.0);
    }
}
