//! Session-level protocol stacks: [`RxlStack`] and [`CxlStack`].
//!
//! A *stack* is one endpoint's view of one direction of a connection: a send
//! counter that assigns sequence numbers to outgoing flits and a receive
//! counter that validates incoming ones. The two stacks expose identical
//! APIs so experiments and applications can swap protocols with a one-line
//! change; their difference is exactly the paper's thesis:
//!
//! * [`RxlStack::receive`] rejects a flit whenever its payload is corrupted
//!   **or** it is not the flit the receiver expects next — both conditions
//!   surface as one ISN ECRC mismatch.
//! * [`CxlStack::receive`] can only check the sequence when the flit header
//!   carries an explicit FSN; ACK-carrying flits are accepted on data
//!   integrity alone, recreating the Fig. 4 blind spot.

use rxl_flit::{CxlFlitCodec, Flit256, ReplayCmd, RxlFlitCodec, WireFlit};

use crate::config::StackConfig;

/// Why a received flit was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReceiveError {
    /// The link-layer FEC could not repair the flit (it would be dropped by
    /// a switch, or discarded at the endpoint).
    FecUncorrectable,
    /// The end-to-end check failed: the payload is corrupted, or this is not
    /// the expected flit in the sequence (a predecessor was dropped, or this
    /// flit is a replay). RXL cannot — and does not need to — distinguish
    /// the two: both trigger a retry.
    SequenceOrDataMismatch,
    /// Baseline CXL only: the link CRC failed.
    CrcMismatch,
    /// Baseline CXL only: the flit carries an explicit FSN that does not
    /// match the expected sequence number.
    ExplicitSequenceMismatch {
        /// The FSN carried by the flit.
        got: u16,
        /// The sequence number the receiver expected.
        expected: u16,
    },
}

impl std::fmt::Display for ReceiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReceiveError::FecUncorrectable => write!(f, "FEC uncorrectable"),
            ReceiveError::SequenceOrDataMismatch => {
                write!(f, "ISN ECRC mismatch (corruption or sequence violation)")
            }
            ReceiveError::CrcMismatch => write!(f, "link CRC mismatch"),
            ReceiveError::ExplicitSequenceMismatch { got, expected } => {
                write!(
                    f,
                    "explicit sequence mismatch (got {got}, expected {expected})"
                )
            }
        }
    }
}

impl std::error::Error for ReceiveError {}

/// An RXL endpoint session.
#[derive(Clone, Debug)]
pub struct RxlStack {
    codec: RxlFlitCodec,
    next_seq: u16,
    expected_seq: u16,
    accepted: u64,
    rejected: u64,
}

impl Default for RxlStack {
    fn default() -> Self {
        Self::new()
    }
}

impl RxlStack {
    /// Creates a session with the default configuration.
    pub fn new() -> Self {
        Self::with_config(StackConfig::rxl())
    }

    /// Creates a session with an explicit configuration.
    pub fn with_config(config: StackConfig) -> Self {
        RxlStack {
            codec: RxlFlitCodec::with_mode(config.isn_mode),
            next_seq: 0,
            expected_seq: 0,
            accepted: 0,
            rejected: 0,
        }
    }

    /// The sequence number the next transmitted flit will be bound to.
    pub fn next_seq(&self) -> u16 {
        self.next_seq
    }

    /// The sequence number the receiver expects next.
    pub fn expected_seq(&self) -> u16 {
        self.expected_seq
    }

    /// Number of flits accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Number of flits rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Encodes `flit` for transmission, binding it to the next sequence
    /// number and advancing the send counter.
    pub fn send(&mut self, flit: &Flit256) -> WireFlit {
        let wire = self.codec.encode(flit, self.next_seq);
        self.next_seq = (self.next_seq + 1) & self.codec.seq_mask();
        wire
    }

    /// Validates a received wire flit. On success the expected sequence
    /// number advances and the recovered flit is returned; on failure the
    /// receiver state is unchanged so the retried flit can be re-validated.
    pub fn receive(&mut self, wire: &WireFlit) -> Result<Flit256, ReceiveError> {
        let out = self.codec.decode(wire, self.expected_seq);
        if !out.fec.accepted() {
            self.rejected += 1;
            return Err(ReceiveError::FecUncorrectable);
        }
        if !out.ecrc_ok {
            self.rejected += 1;
            return Err(ReceiveError::SequenceOrDataMismatch);
        }
        self.expected_seq = (self.expected_seq + 1) & self.codec.seq_mask();
        self.accepted += 1;
        Ok(out.flit.expect("accepted flit carries contents"))
    }
}

/// A baseline CXL endpoint session.
#[derive(Clone, Debug)]
pub struct CxlStack {
    codec: CxlFlitCodec,
    next_seq: u16,
    expected_seq: u16,
    accepted: u64,
    rejected: u64,
    unchecked_accepts: u64,
}

impl Default for CxlStack {
    fn default() -> Self {
        Self::new()
    }
}

impl CxlStack {
    /// Creates a baseline CXL session.
    pub fn new() -> Self {
        CxlStack {
            codec: CxlFlitCodec::new(),
            next_seq: 0,
            expected_seq: 0,
            accepted: 0,
            rejected: 0,
            unchecked_accepts: 0,
        }
    }

    /// The sequence number the next transmitted flit will carry (when not
    /// piggybacking an ACK).
    pub fn next_seq(&self) -> u16 {
        self.next_seq
    }

    /// The sequence number the receiver expects next.
    pub fn expected_seq(&self) -> u16 {
        self.expected_seq
    }

    /// Number of flits accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Number of flits accepted *without* a sequence check because their FSN
    /// field carried an acknowledgement — the paper's blind spot.
    pub fn unchecked_accepts(&self) -> u64 {
        self.unchecked_accepts
    }

    /// Number of flits rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Encodes `flit` for transmission. If the flit's header does not carry
    /// an acknowledgement, its FSN field is overwritten with the session's
    /// next sequence number (the baseline CXL behaviour); either way the send
    /// counter advances.
    pub fn send(&mut self, flit: &Flit256) -> WireFlit {
        let mut to_send = flit.clone();
        if !to_send.header.replay_cmd.hides_own_sequence() {
            to_send.header.fsn = self.next_seq & 0x3FF;
        }
        self.next_seq = (self.next_seq + 1) & 0x3FF;
        self.codec.encode(&to_send)
    }

    /// Validates a received wire flit with the baseline CXL rules.
    pub fn receive(&mut self, wire: &WireFlit) -> Result<Flit256, ReceiveError> {
        let out = self.codec.decode(wire);
        if !out.fec.accepted() {
            self.rejected += 1;
            return Err(ReceiveError::FecUncorrectable);
        }
        if !out.crc_ok {
            self.rejected += 1;
            return Err(ReceiveError::CrcMismatch);
        }
        let flit = out.flit.expect("accepted flit carries contents");
        if flit.header.replay_cmd == ReplayCmd::SeqNum {
            if flit.header.fsn != self.expected_seq {
                self.rejected += 1;
                return Err(ReceiveError::ExplicitSequenceMismatch {
                    got: flit.header.fsn,
                    expected: self.expected_seq,
                });
            }
        } else {
            // ACK-carrying (or NACK-carrying) flit: no sequence check is
            // possible; accept on data integrity alone.
            self.unchecked_accepts += 1;
        }
        self.expected_seq = (self.expected_seq + 1) & 0x3FF;
        self.accepted += 1;
        Ok(flit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rxl_crc::isn::IsnMode;
    use rxl_flit::{FlitHeader, MemOp, Message};

    fn flit_with(tag: u16, header: FlitHeader) -> Flit256 {
        let mut f = Flit256::new(header);
        f.pack_messages(&[Message::request(MemOp::RdCurr, tag as u64 * 64, 0, tag)])
            .unwrap();
        f
    }

    #[test]
    fn rxl_round_trip_in_order() {
        let mut tx = RxlStack::new();
        let mut rx = RxlStack::new();
        for tag in 0..20u16 {
            let f = flit_with(tag, FlitHeader::ack(0));
            let wire = tx.send(&f);
            let got = rx.receive(&wire).expect("in-order flit accepted");
            assert_eq!(got, f);
        }
        assert_eq!(rx.accepted(), 20);
        assert_eq!(rx.rejected(), 0);
        assert_eq!(rx.expected_seq(), 20);
    }

    #[test]
    fn rxl_detects_drops_replays_and_corruption() {
        let mut tx = RxlStack::new();
        let mut rx = RxlStack::new();
        let f0 = flit_with(0, FlitHeader::ack(0));
        let f1 = flit_with(1, FlitHeader::ack(0));
        let w0 = tx.send(&f0);
        let w1 = tx.send(&f1);

        // Drop w0: w1 is rejected, receiver state unchanged.
        assert_eq!(rx.receive(&w1), Err(ReceiveError::SequenceOrDataMismatch));
        assert_eq!(rx.expected_seq(), 0);
        // Replay arrives: everything recovers in order.
        assert!(rx.receive(&w0).is_ok());
        assert!(rx.receive(&w1).is_ok());
        // A replay of an already-accepted flit is also rejected.
        assert_eq!(rx.receive(&w1), Err(ReceiveError::SequenceOrDataMismatch));
        // Corruption that defeats the FEC is reported distinctly.
        let mut corrupted = tx.send(&f0);
        corrupted[0] ^= 0x11;
        corrupted[3] ^= 0x11;
        assert_eq!(rx.receive(&corrupted), Err(ReceiveError::FecUncorrectable));
    }

    #[test]
    fn rxl_append_mode_behaves_identically() {
        let cfg = StackConfig {
            isn_mode: IsnMode::AppendToInput,
            ..StackConfig::rxl()
        };
        let mut tx = RxlStack::with_config(cfg);
        let mut rx = RxlStack::with_config(cfg);
        let f = flit_with(9, FlitHeader::ack(3));
        let w0 = tx.send(&f);
        let w1 = tx.send(&f);
        assert!(rx.receive(&w0).is_ok());
        assert!(rx.receive(&w1).is_ok());
        assert_eq!(rx.receive(&w1), Err(ReceiveError::SequenceOrDataMismatch));
    }

    #[test]
    fn cxl_round_trip_and_explicit_mismatch() {
        let mut tx = CxlStack::new();
        let mut rx = CxlStack::new();
        let f = flit_with(0, FlitHeader::with_seq(0));
        let w0 = tx.send(&f);
        let w1 = tx.send(&f);
        assert!(rx.receive(&w0).is_ok());
        // Drop-equivalent: skipping w1 and replaying w0 later is detected
        // because these flits carry explicit FSNs.
        match rx.receive(&w0) {
            Err(ReceiveError::ExplicitSequenceMismatch { got, expected }) => {
                assert_eq!(got, 0);
                assert_eq!(expected, 1);
            }
            other => panic!("unexpected result {other:?}"),
        }
        assert!(rx.receive(&w1).is_ok());
    }

    #[test]
    fn cxl_blind_spot_on_ack_carrying_flits() {
        let mut tx = CxlStack::new();
        let mut rx = CxlStack::new();
        let f0 = flit_with(0, FlitHeader::with_seq(0));
        let f1 = flit_with(1, FlitHeader::with_seq(0));
        let f2_ack = flit_with(2, FlitHeader::ack(100));
        let w0 = tx.send(&f0);
        let _w1_dropped = tx.send(&f1);
        let w2 = tx.send(&f2_ack);

        assert!(rx.receive(&w0).is_ok());
        // Flit 1 is dropped; flit 2 hides its sequence behind the ACK and is
        // accepted anyway — the failure RXL eliminates.
        let accepted = rx
            .receive(&w2)
            .expect("baseline CXL accepts the ACK-carrying flit");
        assert_eq!(accepted.unpack_messages().unwrap()[0].tag(), 2);
        assert_eq!(rx.unchecked_accepts(), 1);

        // The same scenario under RXL is caught immediately.
        let mut rtx = RxlStack::new();
        let mut rrx = RxlStack::new();
        let r0 = rtx.send(&f0);
        let _r1_dropped = rtx.send(&f1);
        let r2 = rtx.send(&f2_ack);
        assert!(rrx.receive(&r0).is_ok());
        assert_eq!(rrx.receive(&r2), Err(ReceiveError::SequenceOrDataMismatch));
    }

    #[test]
    fn cxl_crc_rejection_is_reported() {
        let mut tx = CxlStack::new();
        let mut rx = CxlStack::new();
        let wire = tx.send(&flit_with(0, FlitHeader::with_seq(0)));
        // Corrupt beyond FEC: equal flips in one way.
        let mut bad = wire;
        bad[1] ^= 0x40;
        bad[4] ^= 0x40;
        assert_eq!(rx.receive(&bad), Err(ReceiveError::FecUncorrectable));
    }

    #[test]
    fn error_display_strings_are_informative() {
        let e = ReceiveError::ExplicitSequenceMismatch {
            got: 3,
            expected: 2,
        };
        assert!(e.to_string().contains("got 3"));
        assert!(ReceiveError::SequenceOrDataMismatch
            .to_string()
            .contains("ISN"));
        assert!(ReceiveError::FecUncorrectable.to_string().contains("FEC"));
        assert!(ReceiveError::CrcMismatch.to_string().contains("CRC"));
    }

    #[test]
    fn sequence_counters_wrap_cleanly() {
        let mut tx = RxlStack::new();
        let mut rx = RxlStack::new();
        let f = flit_with(1, FlitHeader::ack(0));
        for _ in 0..1030 {
            let w = tx.send(&f);
            assert!(rx.receive(&w).is_ok());
        }
        assert_eq!(tx.next_seq(), 1030 % 1024);
        assert_eq!(rx.expected_seq(), 1030 % 1024);
    }
}
