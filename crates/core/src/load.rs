//! Load bridge: latency-vs-offered-load curves for a [`FabricSpec`].
//!
//! [`FabricSpec::simulate`] answers *does this fabric fail?* at an
//! accelerated BER; this module answers *how fast is it under load?*. The
//! canonical sweep instantiates exactly the ring fabric of `simulate`
//! (same topology, protocol variant and accelerated channel), paces
//! open-loop traffic into it across an offered-load ladder through the
//! `rxl-load` subsystem, and reports per-point latency distributions with a
//! detected saturation knee.

use rxl_load::{
    ArrivalProcess, FanoutShape, LoadSweep, LoadSweepConfig, LoadSweepReport, TrafficMatrix,
};
use rxl_telemetry::{
    OperatingPoint, RequestSweep, RequestSweepConfig, RequestSweepReport, SloSpec,
};

use crate::fabric::{FabricSimOptions, FabricSpec};

/// Parameters of the canonical offered-load sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadSweepSpec {
    /// Offered-load ladder, ascending fractions of line rate in `(0, 1]`.
    pub loads: Vec<f64>,
    /// How load distributes over the instantiated sessions.
    pub matrix: TrafficMatrix,
    /// Line-rate arrival-process template (scaled per ladder point).
    pub arrival: ArrivalProcess,
}

impl Default for LoadSweepSpec {
    fn default() -> Self {
        LoadSweepSpec {
            loads: vec![0.05, 0.10, 0.20, 0.40, 0.80],
            matrix: TrafficMatrix::Uniform,
            arrival: ArrivalProcess::fixed(1.0),
        }
    }
}

/// Offered-load sweep evidence for a [`FabricSpec`].
#[derive(Clone, Debug)]
pub struct LoadEvidence {
    /// Label of the generated topology.
    pub topology: String,
    /// Sessions instantiated.
    pub sessions: usize,
    /// The latency-vs-load curve (latencies in flit slots; one slot is
    /// 2 ns at the ×16 CXL 3.0 rate).
    pub report: LoadSweepReport,
}

impl FabricSpec {
    /// Runs the canonical offered-load sweep against this spec: the same
    /// accelerated ring fabric as [`FabricSpec::simulate`], paced through
    /// `sweep.arrival` at each load of `sweep.loads`, with
    /// `opts.messages_per_session` messages per loaded stream and
    /// `opts.trials` Monte-Carlo trials per ladder point.
    ///
    /// Latency here is an *end-to-end message* latency in flit slots,
    /// including queueing, serialisation, switching, and — under a noisy
    /// channel — go-back-N retry and replay delay. That last term is the
    /// latency cost of reliability the paper's bandwidth analysis cannot
    /// see: at BER 0 RXL and baseline CXL pace identically, and any RXL
    /// excess mean latency appears only through retry/replay events
    /// (pinned by `tests/load_latency.rs`).
    pub fn simulate_load(&self, opts: &FabricSimOptions, sweep: &LoadSweepSpec) -> LoadEvidence {
        let (topology, _variant, config) = self.instantiate(opts);
        let sessions = topology.session_count();
        let name = topology.name.clone();
        let driver = LoadSweep::new(
            topology,
            config,
            LoadSweepConfig {
                loads: sweep.loads.clone(),
                messages_per_session: opts.messages_per_session,
                trials: opts.trials,
                matrix: sweep.matrix,
                arrival: sweep.arrival,
                ..LoadSweepConfig::default()
            },
        );
        LoadEvidence {
            topology: name,
            sessions,
            report: driver.run(),
        }
    }
}

/// Parameters of the canonical open-system request sweep.
#[derive(Clone, Debug)]
pub struct RequestSweepSpec {
    /// Per-session message-load ladder, ascending fractions in `(0, 1]`.
    pub loads: Vec<f64>,
    /// Shards per request.
    pub fanout: usize,
    /// Shard placement shape.
    pub shape: FanoutShape,
    /// Unit-rate request arrival-process template.
    pub arrival: ArrivalProcess,
    /// Slots each trial's arrivals span (the measurement horizon).
    pub measure_slots: u64,
    /// Request-telemetry window length, in slots.
    pub window_slots: u64,
    /// Request SLO judged by the operating-point recommender.
    pub slo: SloSpec,
}

impl Default for RequestSweepSpec {
    fn default() -> Self {
        RequestSweepSpec {
            loads: vec![0.05, 0.10, 0.20, 0.40],
            fanout: 4,
            shape: FanoutShape::Uniform,
            arrival: ArrivalProcess::poisson(1.0),
            measure_slots: 2_000,
            window_slots: 400,
            slo: SloSpec::default(),
        }
    }
}

/// Open-system request-sweep evidence for a [`FabricSpec`].
#[derive(Clone, Debug)]
pub struct RequestEvidence {
    /// Label of the generated topology.
    pub topology: String,
    /// Sessions shards were placed on.
    pub loaded_sessions: usize,
    /// The request-level latency-vs-load curve.
    pub report: RequestSweepReport,
    /// The recommended operating point under the spec's SLO.
    pub operating_point: OperatingPoint,
}

impl FabricSpec {
    /// Runs the canonical open-system request sweep against this spec: the
    /// same accelerated ring fabric as [`FabricSpec::simulate`], serving an
    /// unbounded-arrival fanout workload to a fixed horizon (no drain
    /// tail), measured over warmup-discarded steady-state windows, with an
    /// operating-point recommendation under `sweep.slo`.
    pub fn simulate_requests(
        &self,
        opts: &FabricSimOptions,
        sweep: &RequestSweepSpec,
    ) -> RequestEvidence {
        let (topology, _variant, config) = self.instantiate(opts);
        let name = topology.name.clone();
        let driver = RequestSweep::new(
            topology,
            config,
            RequestSweepConfig {
                loads: sweep.loads.clone(),
                fanout: sweep.fanout,
                shape: sweep.shape,
                trials: opts.trials,
                arrival: sweep.arrival,
                measure_slots: sweep.measure_slots,
                window_slots: sweep.window_slots,
                ..RequestSweepConfig::default()
            },
        );
        let report = driver.run();
        let operating_point = OperatingPoint::recommend(&report, &sweep.slo);
        RequestEvidence {
            topology: name,
            loaded_sessions: report.loaded_sessions,
            report,
            operating_point,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolKind;

    #[test]
    fn rxl_load_sweep_produces_a_clean_monotone_curve() {
        let spec = FabricSpec::new(ProtocolKind::Rxl, 64, 1);
        let opts = FabricSimOptions {
            ber: 1e-5,
            sessions: 4,
            messages_per_session: 150,
            trials: 2,
            base_seed: 3,
        };
        let sweep = LoadSweepSpec {
            loads: vec![0.1, 0.6],
            ..LoadSweepSpec::default()
        };
        let ev = spec.simulate_load(&opts, &sweep);
        assert!(ev.topology.contains("ring"));
        assert!(ev.sessions >= 4);
        assert_eq!(ev.report.points.len(), 2);
        for p in &ev.report.points {
            assert!(p.failures.is_clean(), "{:?}", p.failures);
            assert_eq!(p.injected_messages, p.delivered_messages);
            assert!(p.stats.p50 > 0);
        }
        assert!(ev.report.points[1].stats.p99 >= ev.report.points[0].stats.p99);
    }

    #[test]
    fn load_evidence_reports_the_requested_shape() {
        let spec = FabricSpec::new(ProtocolKind::Cxl, 16, 1);
        let opts = FabricSimOptions {
            ber: 1e-6,
            sessions: 2,
            messages_per_session: 60,
            trials: 1,
            base_seed: 8,
        };
        let sweep = LoadSweepSpec {
            loads: vec![0.2],
            matrix: TrafficMatrix::Permutation,
            arrival: ArrivalProcess::poisson(1.0),
        };
        let ev = spec.simulate_load(&opts, &sweep);
        assert_eq!(ev.report.points.len(), 1);
        assert_eq!(ev.report.matrix, "permutation");
        assert_eq!(ev.report.arrival, "poisson");
        // Permutation is downstream-only: half the symmetric volume.
        let p = &ev.report.points[0];
        assert_eq!(p.injected_messages, ev.sessions as u64 * 60);
    }

    #[test]
    fn request_sweep_serves_the_spec_fabric_and_recommends_a_point() {
        let spec = FabricSpec::new(ProtocolKind::Rxl, 64, 1);
        let opts = FabricSimOptions {
            ber: 0.0,
            sessions: 4,
            messages_per_session: 0,
            trials: 1,
            base_seed: 5,
        };
        let sweep = RequestSweepSpec {
            loads: vec![0.05, 0.30],
            fanout: 2,
            measure_slots: 1_200,
            window_slots: 300,
            ..RequestSweepSpec::default()
        };
        let ev = spec.simulate_requests(&opts, &sweep);
        assert!(ev.topology.contains("ring"));
        assert_eq!(ev.report.points.len(), 2);
        for p in &ev.report.points {
            assert!(p.requests_completed > 0);
            assert!(p.steady.windows_used >= 1);
        }
        assert!(ev.operating_point.summary.contains("SLO"));
    }
}
