//! Load bridge: latency-vs-offered-load curves for a [`FabricSpec`].
//!
//! [`FabricSpec::simulate`] answers *does this fabric fail?* at an
//! accelerated BER; this module answers *how fast is it under load?*. The
//! canonical sweep instantiates exactly the ring fabric of `simulate`
//! (same topology, protocol variant and accelerated channel), paces
//! open-loop traffic into it across an offered-load ladder through the
//! `rxl-load` subsystem, and reports per-point latency distributions with a
//! detected saturation knee.

use rxl_load::{ArrivalProcess, LoadSweep, LoadSweepConfig, LoadSweepReport, TrafficMatrix};

use crate::fabric::{FabricSimOptions, FabricSpec};

/// Parameters of the canonical offered-load sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadSweepSpec {
    /// Offered-load ladder, ascending fractions of line rate in `(0, 1]`.
    pub loads: Vec<f64>,
    /// How load distributes over the instantiated sessions.
    pub matrix: TrafficMatrix,
    /// Line-rate arrival-process template (scaled per ladder point).
    pub arrival: ArrivalProcess,
}

impl Default for LoadSweepSpec {
    fn default() -> Self {
        LoadSweepSpec {
            loads: vec![0.05, 0.10, 0.20, 0.40, 0.80],
            matrix: TrafficMatrix::Uniform,
            arrival: ArrivalProcess::fixed(1.0),
        }
    }
}

/// Offered-load sweep evidence for a [`FabricSpec`].
#[derive(Clone, Debug)]
pub struct LoadEvidence {
    /// Label of the generated topology.
    pub topology: String,
    /// Sessions instantiated.
    pub sessions: usize,
    /// The latency-vs-load curve (latencies in flit slots; one slot is
    /// 2 ns at the ×16 CXL 3.0 rate).
    pub report: LoadSweepReport,
}

impl FabricSpec {
    /// Runs the canonical offered-load sweep against this spec: the same
    /// accelerated ring fabric as [`FabricSpec::simulate`], paced through
    /// `sweep.arrival` at each load of `sweep.loads`, with
    /// `opts.messages_per_session` messages per loaded stream and
    /// `opts.trials` Monte-Carlo trials per ladder point.
    ///
    /// Latency here is an *end-to-end message* latency in flit slots,
    /// including queueing, serialisation, switching, and — under a noisy
    /// channel — go-back-N retry and replay delay. That last term is the
    /// latency cost of reliability the paper's bandwidth analysis cannot
    /// see: at BER 0 RXL and baseline CXL pace identically, and any RXL
    /// excess mean latency appears only through retry/replay events
    /// (pinned by `tests/load_latency.rs`).
    pub fn simulate_load(&self, opts: &FabricSimOptions, sweep: &LoadSweepSpec) -> LoadEvidence {
        let (topology, _variant, config) = self.instantiate(opts);
        let sessions = topology.session_count();
        let name = topology.name.clone();
        let driver = LoadSweep::new(
            topology,
            config,
            LoadSweepConfig {
                loads: sweep.loads.clone(),
                messages_per_session: opts.messages_per_session,
                trials: opts.trials,
                matrix: sweep.matrix,
                arrival: sweep.arrival,
                ..LoadSweepConfig::default()
            },
        );
        LoadEvidence {
            topology: name,
            sessions,
            report: driver.run(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolKind;

    #[test]
    fn rxl_load_sweep_produces_a_clean_monotone_curve() {
        let spec = FabricSpec::new(ProtocolKind::Rxl, 64, 1);
        let opts = FabricSimOptions {
            ber: 1e-5,
            sessions: 4,
            messages_per_session: 150,
            trials: 2,
            base_seed: 3,
        };
        let sweep = LoadSweepSpec {
            loads: vec![0.1, 0.6],
            ..LoadSweepSpec::default()
        };
        let ev = spec.simulate_load(&opts, &sweep);
        assert!(ev.topology.contains("ring"));
        assert!(ev.sessions >= 4);
        assert_eq!(ev.report.points.len(), 2);
        for p in &ev.report.points {
            assert!(p.failures.is_clean(), "{:?}", p.failures);
            assert_eq!(p.injected_messages, p.delivered_messages);
            assert!(p.stats.p50 > 0);
        }
        assert!(ev.report.points[1].stats.p99 >= ev.report.points[0].stats.p99);
    }

    #[test]
    fn load_evidence_reports_the_requested_shape() {
        let spec = FabricSpec::new(ProtocolKind::Cxl, 16, 1);
        let opts = FabricSimOptions {
            ber: 1e-6,
            sessions: 2,
            messages_per_session: 60,
            trials: 1,
            base_seed: 8,
        };
        let sweep = LoadSweepSpec {
            loads: vec![0.2],
            matrix: TrafficMatrix::Permutation,
            arrival: ArrivalProcess::poisson(1.0),
        };
        let ev = spec.simulate_load(&opts, &sweep);
        assert_eq!(ev.report.points.len(), 1);
        assert_eq!(ev.report.matrix, "permutation");
        assert_eq!(ev.report.arrival, "poisson");
        // Permutation is downstream-only: half the symmetric volume.
        let p = &ev.report.points[0];
        assert_eq!(p.injected_messages, ev.sessions as u64 * 60);
    }
}
