//! Error-detection capability analysis for CRC codes.
//!
//! Section 4.1 of the paper states that the 64-bit flit CRC
//!
//! * detects **all** random error patterns of up to four flipped bits,
//! * detects **all** burst errors up to 64 bits long,
//! * and detects any more severe corruption with probability `1 − 2⁻⁶⁴`.
//!
//! These helpers quantify such claims empirically for any [`CrcSpec`]. They
//! rely on CRC linearity: whether an error pattern `e` is detected is
//! independent of the underlying message, so coverage can be measured by
//! applying patterns to an all-zero message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::CrcSpec;
use crate::table::TableCrc;

/// Result of a detection-coverage experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoverageReport {
    /// Number of error patterns evaluated.
    pub trials: u64,
    /// Number of patterns whose corruption went undetected.
    pub undetected: u64,
}

impl CoverageReport {
    /// Fraction of patterns detected.
    pub fn detected_fraction(&self) -> f64 {
        if self.trials == 0 {
            return 1.0;
        }
        1.0 - self.undetected as f64 / self.trials as f64
    }

    /// Fraction of patterns that escaped detection.
    pub fn undetected_fraction(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.undetected as f64 / self.trials as f64
    }
}

/// An analyser bound to one CRC algorithm and one message length.
#[derive(Clone, Debug)]
pub struct CrcAnalyzer {
    crc: TableCrc,
    message_len: usize,
    baseline: u64,
}

impl CrcAnalyzer {
    /// Creates an analyser for messages of `message_len` bytes.
    pub fn new(spec: CrcSpec, message_len: usize) -> Self {
        let crc = TableCrc::new(spec);
        let baseline = crc.checksum(&vec![0u8; message_len]);
        CrcAnalyzer {
            crc,
            message_len,
            baseline,
        }
    }

    /// The message length (in bytes) under analysis.
    pub fn message_len(&self) -> usize {
        self.message_len
    }

    /// Returns `true` if the error pattern (given as a full-length XOR mask)
    /// would go undetected on *any* message, by CRC linearity.
    pub fn pattern_undetected(&self, xor_mask: &[u8]) -> bool {
        assert_eq!(xor_mask.len(), self.message_len);
        if xor_mask.iter().all(|&b| b == 0) {
            // No corruption at all is not an "undetected error".
            return false;
        }
        self.crc.checksum(xor_mask) == self.baseline
    }

    /// Checks a sparse error pattern specified as flipped bit positions.
    pub fn bits_undetected(&self, bit_positions: &[usize]) -> bool {
        let mut mask = vec![0u8; self.message_len];
        for &pos in bit_positions {
            assert!(pos < self.message_len * 8, "bit position out of range");
            mask[pos / 8] ^= 1 << (pos % 8);
        }
        self.pattern_undetected(&mask)
    }

    /// Measures detection of random `k`-bit error patterns.
    pub fn random_kbit_coverage(&self, k: usize, trials: u64, seed: u64) -> CoverageReport {
        assert!(k >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let total_bits = self.message_len * 8;
        let mut undetected = 0u64;
        for _ in 0..trials {
            // Sample k distinct bit positions.
            let mut positions = Vec::with_capacity(k);
            while positions.len() < k {
                let p = rng.random_range(0..total_bits);
                if !positions.contains(&p) {
                    positions.push(p);
                }
            }
            if self.bits_undetected(&positions) {
                undetected += 1;
            }
        }
        CoverageReport { trials, undetected }
    }

    /// Measures detection of contiguous burst errors of exactly `burst_bits`
    /// bits (first and last bit of the burst are always flipped; interior bits
    /// are random). Bursts no longer than the CRC width must always be
    /// detected for a proper CRC polynomial.
    pub fn burst_coverage(&self, burst_bits: usize, trials: u64, seed: u64) -> CoverageReport {
        assert!(burst_bits >= 1);
        let total_bits = self.message_len * 8;
        assert!(burst_bits <= total_bits);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut undetected = 0u64;
        for _ in 0..trials {
            let start = rng.random_range(0..=(total_bits - burst_bits));
            let mut mask = vec![0u8; self.message_len];
            for offset in 0..burst_bits {
                let flip = if offset == 0 || offset == burst_bits - 1 {
                    true
                } else {
                    rng.random_bool(0.5)
                };
                if flip {
                    let pos = start + offset;
                    mask[pos / 8] ^= 1 << (pos % 8);
                }
            }
            if self.pattern_undetected(&mask) {
                undetected += 1;
            }
        }
        CoverageReport { trials, undetected }
    }

    /// Measures detection of fully random corruption (every byte replaced by a
    /// uniformly random value). The expected undetected fraction is ≈ 2⁻ʷ for
    /// a w-bit CRC, which for 64 bits is unobservably small; this function is
    /// mainly useful for narrow CRCs where the 2⁻ʷ floor is measurable.
    pub fn random_corruption_coverage(&self, trials: u64, seed: u64) -> CoverageReport {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut undetected = 0u64;
        let mut mask = vec![0u8; self.message_len];
        for _ in 0..trials {
            rng.fill(&mut mask[..]);
            if mask.iter().all(|&b| b == 0) {
                continue;
            }
            if self.pattern_undetected(&mask) {
                undetected += 1;
            }
        }
        CoverageReport { trials, undetected }
    }

    /// Exhaustively checks all single-bit and all two-bit error patterns for
    /// short messages. Returns `(single_undetected, double_undetected)`.
    /// Intended for messages of at most a few hundred bits.
    pub fn exhaustive_one_and_two_bit(&self) -> (u64, u64) {
        let total_bits = self.message_len * 8;
        let mut single = 0u64;
        let mut double = 0u64;
        for i in 0..total_bits {
            if self.bits_undetected(&[i]) {
                single += 1;
            }
        }
        for i in 0..total_bits {
            for j in (i + 1)..total_bits {
                if self.bits_undetected(&[i, j]) {
                    double += 1;
                }
            }
        }
        (single, double)
    }
}

/// The theoretical undetected-error probability floor of a `width`-bit CRC
/// under severe corruption: `2^-width`.
pub fn theoretical_undetected_fraction(width: u32) -> f64 {
    2f64.powi(-(width as i32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{CRC16_CCITT_FALSE, CRC32_ISO_HDLC, FLIT_CRC64};

    #[test]
    fn coverage_report_math() {
        let r = CoverageReport {
            trials: 1000,
            undetected: 5,
        };
        assert!((r.detected_fraction() - 0.995).abs() < 1e-12);
        assert!((r.undetected_fraction() - 0.005).abs() < 1e-12);
        let empty = CoverageReport {
            trials: 0,
            undetected: 0,
        };
        assert_eq!(empty.detected_fraction(), 1.0);
    }

    #[test]
    fn null_pattern_is_not_an_error() {
        let a = CrcAnalyzer::new(FLIT_CRC64, 32);
        assert!(!a.pattern_undetected(&[0u8; 32]));
    }

    #[test]
    fn crc64_detects_all_single_bit_errors_on_flit_sized_messages() {
        // 242 bytes = 2B header + 240B payload, the CXL CRC input size.
        let a = CrcAnalyzer::new(FLIT_CRC64, 242);
        for pos in (0..242 * 8).step_by(97) {
            assert!(!a.bits_undetected(&[pos]));
        }
    }

    #[test]
    fn crc64_detects_sampled_four_bit_errors() {
        let a = CrcAnalyzer::new(FLIT_CRC64, 242);
        let report = a.random_kbit_coverage(4, 2_000, 42);
        assert_eq!(report.undetected, 0, "4-bit error escaped the 64-bit CRC");
    }

    #[test]
    fn crc64_detects_sampled_bursts_up_to_64_bits() {
        let a = CrcAnalyzer::new(FLIT_CRC64, 242);
        for burst in [2usize, 8, 33, 64] {
            let report = a.burst_coverage(burst, 500, 7);
            assert_eq!(report.undetected, 0, "burst of {burst} bits escaped");
        }
    }

    #[test]
    fn crc16_exhaustive_small_message_has_no_undetected_one_or_two_bit_errors() {
        // CRC-16/CCITT has Hamming distance ≥ 4 for short messages, so all
        // 1- and 2-bit errors must be caught on an 8-byte message.
        let a = CrcAnalyzer::new(CRC16_CCITT_FALSE, 8);
        let (single, double) = a.exhaustive_one_and_two_bit();
        assert_eq!(single, 0);
        assert_eq!(double, 0);
    }

    #[test]
    fn random_corruption_floor_is_visible_for_narrow_crcs() {
        // With a 16-bit CRC the undetected fraction under random corruption
        // should be in the vicinity of 2^-16 ≈ 1.5e-5. With 60k trials we
        // mostly just check it is far below 1e-3 and not exactly zero-biased.
        let a = CrcAnalyzer::new(CRC16_CCITT_FALSE, 64);
        let report = a.random_corruption_coverage(60_000, 1234);
        assert!(report.undetected_fraction() < 1e-3);
    }

    #[test]
    fn crc32_random_corruption_rarely_escapes() {
        let a = CrcAnalyzer::new(CRC32_ISO_HDLC, 64);
        let report = a.random_corruption_coverage(20_000, 99);
        assert_eq!(report.undetected, 0);
    }

    #[test]
    fn theoretical_floor() {
        assert!((theoretical_undetected_fraction(16) - 1.52587890625e-5).abs() < 1e-12);
        assert!(theoretical_undetected_fraction(64) < 1e-18);
    }

    #[test]
    #[should_panic]
    fn out_of_range_bit_position_panics() {
        let a = CrcAnalyzer::new(FLIT_CRC64, 4);
        let _ = a.bits_undetected(&[400]);
    }
}
