//! Table-driven (byte-at-a-time) CRC engine.
//!
//! Builds a 256-entry lookup table from a [`CrcSpec`] and processes input one
//! byte per step. This is the engine used on the hot paths (flit encode /
//! decode in `rxl-flit` and the Monte-Carlo simulator); its output is
//! verified against the bitwise reference engine by unit and property tests.

use crate::engine::BitwiseCrc;
use crate::spec::{reflect_bits, CrcSpec};

/// A byte-at-a-time table-driven CRC engine.
#[derive(Clone)]
pub struct TableCrc {
    spec: CrcSpec,
    table: [u64; 256],
}

impl std::fmt::Debug for TableCrc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableCrc")
            .field("spec", &self.spec)
            .finish()
    }
}

impl TableCrc {
    /// Builds the lookup table for the given algorithm.
    ///
    /// This is a `const fn`: the catalogue ([`crate::catalog`]) evaluates it
    /// at compile time into `static` engines, so constructing an engine for
    /// any standard algorithm costs nothing at runtime. Prefer
    /// [`crate::catalog::engine_for`] (or the named statics) over calling
    /// this directly with a catalogue spec.
    pub const fn new(spec: CrcSpec) -> Self {
        let mut table = [0u64; 256];
        let top = spec.top_bit();
        let mask = spec.mask();
        let mut i = 0;
        while i < 256 {
            // Table is indexed by the (possibly reflected) input byte already
            // XORed into the top of the register.
            let mut reg = (i as u64) << (spec.width - 8);
            let mut bit = 0;
            while bit < 8 {
                reg = if reg & top != 0 {
                    ((reg << 1) ^ spec.poly) & mask
                } else {
                    (reg << 1) & mask
                };
                bit += 1;
            }
            table[i] = reg;
            i += 1;
        }
        TableCrc { spec, table }
    }

    /// The algorithm parameters.
    pub const fn spec(&self) -> &CrcSpec {
        &self.spec
    }

    /// Returns the initial (pre-finalisation) register value.
    #[inline]
    pub fn init_register(&self) -> u64 {
        self.spec.init & self.spec.mask()
    }

    /// Feeds `data` through the register and returns the updated register.
    #[inline]
    pub fn update(&self, mut reg: u64, data: &[u8]) -> u64 {
        let w = self.spec.width;
        if self.spec.reflect_in {
            for &byte in data {
                let b = byte.reverse_bits();
                let idx = (((reg >> (w - 8)) ^ b as u64) & 0xFF) as usize;
                reg = ((reg << 8) & self.spec.mask()) ^ self.table[idx];
            }
        } else {
            for &byte in data {
                let idx = (((reg >> (w - 8)) ^ byte as u64) & 0xFF) as usize;
                reg = ((reg << 8) & self.spec.mask()) ^ self.table[idx];
            }
        }
        reg
    }

    /// Applies output reflection and the final XOR to a register value.
    #[inline]
    pub fn finalize(&self, mut reg: u64) -> u64 {
        if self.spec.reflect_out {
            reg = reflect_bits(reg, self.spec.width);
        }
        (reg ^ self.spec.xor_out) & self.spec.mask()
    }

    /// Computes the checksum of `data` in one call.
    #[inline]
    pub fn checksum(&self, data: &[u8]) -> u64 {
        let reg = self.update(self.init_register(), data);
        self.finalize(reg)
    }

    /// Returns the bitwise reference engine for the same spec (used by tests
    /// and by code paths that favour clarity over speed).
    pub fn reference(&self) -> BitwiseCrc {
        BitwiseCrc::new(self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    const CHECK_INPUT: &[u8] = b"123456789";

    #[test]
    fn check_values_match_catalogue() {
        assert_eq!(
            TableCrc::new(catalog::CRC32_ISO_HDLC).checksum(CHECK_INPUT),
            0xCBF43926
        );
        assert_eq!(
            TableCrc::new(catalog::CRC16_CCITT_FALSE).checksum(CHECK_INPUT),
            0x29B1
        );
        assert_eq!(
            TableCrc::new(catalog::CRC16_ARC).checksum(CHECK_INPUT),
            0xBB3D
        );
        assert_eq!(
            TableCrc::new(catalog::CRC64_XZ).checksum(CHECK_INPUT),
            0x995DC9BBDF1939FA
        );
        assert_eq!(
            TableCrc::new(catalog::CRC64_ECMA_182).checksum(CHECK_INPUT),
            0x6C40DF5F0B497347
        );
        assert_eq!(
            TableCrc::new(catalog::CRC8_SMBUS).checksum(CHECK_INPUT),
            0xF4
        );
    }

    #[test]
    fn matches_bitwise_engine_on_structured_data() {
        for spec in [
            catalog::CRC64_XZ,
            catalog::CRC64_ECMA_182,
            catalog::CRC32_ISO_HDLC,
            catalog::CRC16_CCITT_FALSE,
            catalog::CRC16_ARC,
            catalog::CRC8_SMBUS,
        ] {
            let t = TableCrc::new(spec);
            let b = BitwiseCrc::new(spec);
            for len in [0usize, 1, 2, 7, 63, 64, 240, 256] {
                let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
                assert_eq!(
                    t.checksum(&data),
                    b.checksum(&data),
                    "spec {} len {len}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn incremental_update_matches_one_shot() {
        let t = TableCrc::new(catalog::FLIT_CRC64);
        let data: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        let mut reg = t.init_register();
        for chunk in data.chunks(13) {
            reg = t.update(reg, chunk);
        }
        assert_eq!(t.finalize(reg), t.checksum(&data));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn table_matches_bitwise_for_random_data(data in proptest::collection::vec(any::<u8>(), 0..512)) {
                for spec in [catalog::CRC64_XZ, catalog::CRC32_ISO_HDLC, catalog::CRC16_CCITT_FALSE] {
                    let t = TableCrc::new(spec);
                    let b = BitwiseCrc::new(spec);
                    prop_assert_eq!(t.checksum(&data), b.checksum(&data));
                }
            }

            #[test]
            fn split_point_does_not_matter(data in proptest::collection::vec(any::<u8>(), 1..256), split in 0usize..256) {
                let split = split % data.len();
                let t = TableCrc::new(catalog::FLIT_CRC64);
                let mut reg = t.init_register();
                reg = t.update(reg, &data[..split]);
                reg = t.update(reg, &data[split..]);
                prop_assert_eq!(t.finalize(reg), t.checksum(&data));
            }
        }
    }
}
