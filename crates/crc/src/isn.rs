//! The Implicit Sequence Number (ISN) CRC construction.
//!
//! ISN is the paper's core mechanism (Section 5): instead of transmitting a
//! flit sequence number in the header, the sender folds its local `SeqNum`
//! into the CRC computation. The receiver recomputes the CRC using its local
//! *expected* sequence number (`ESeqNum`). If the flit was corrupted **or** if
//! any preceding flit was silently dropped (so that `SeqNum != ESeqNum`), the
//! recomputed CRC differs from the received one and the receiver initiates a
//! retry. Sequence integrity therefore rides on the existing data-integrity
//! check at zero header cost.
//!
//! Two equivalent constructions are provided:
//!
//! * [`IsnMode::XorIntoPayload`] — the hardware-oriented formulation of
//!   Section 7.3: the 10-bit sequence number is XORed into the lowest 10 bits
//!   of the payload before it enters the (unchanged) CRC datapath. This adds
//!   only 10 XOR gates and one level of logic depth in hardware.
//! * [`IsnMode::AppendToInput`] — the conceptual formulation of Fig. 6b: the
//!   CRC is computed over `header ‖ payload ‖ SeqNum`.
//!
//! Both guarantee that a sequence mismatch is *always* detected: by CRC
//! linearity, the difference between the CRC computed with `SeqNum` and with
//! `ESeqNum` depends only on the XOR of the two numbers, which is a non-zero
//! pattern confined to at most 10 bits — far inside the 64-bit burst length
//! that the flit CRC detects with certainty.

use crate::slice::SliceBy8Crc64;
use crate::spec::CrcSpec;
use crate::table::TableCrc;

/// The CRC engine behind an [`IsnCrc64`]: the slice-by-8 fast path when the
/// spec has a precomputed sliced engine (the flit CRC always does), the
/// byte-at-a-time table engine otherwise. The two keep their registers in
/// different bit orders, but a register never crosses engines, so the
/// distinction is invisible — checksums are identical either way.
#[derive(Clone, Debug)]
enum Engine {
    Fast(&'static SliceBy8Crc64),
    Table(Box<TableCrc>),
}

impl Engine {
    fn for_spec(spec: CrcSpec) -> Self {
        match crate::slice::cached_slice64(&spec) {
            Some(fast) => Engine::Fast(fast),
            None => Engine::Table(Box::new(crate::catalog::engine_for(spec))),
        }
    }

    #[inline]
    fn init_register(&self) -> u64 {
        match self {
            Engine::Fast(e) => e.init_register(),
            Engine::Table(e) => e.init_register(),
        }
    }

    #[inline]
    fn update(&self, reg: u64, data: &[u8]) -> u64 {
        match self {
            Engine::Fast(e) => e.update(reg, data),
            Engine::Table(e) => e.update(reg, data),
        }
    }

    #[inline]
    fn finalize(&self, reg: u64) -> u64 {
        match self {
            Engine::Fast(e) => e.finalize(reg),
            Engine::Table(e) => e.finalize(reg),
        }
    }
}

/// How the sequence number is folded into the CRC input.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum IsnMode {
    /// XOR the sequence number into the low bits of the payload before the
    /// CRC (hardware formulation, Section 7.3 of the paper).
    #[default]
    XorIntoPayload,
    /// Append the little-endian sequence-number bytes to the CRC input
    /// (conceptual formulation, Fig. 6b of the paper).
    AppendToInput,
}

/// Width, in bits, of the CXL flit sequence number (FSN) field.
pub const DEFAULT_SEQ_BITS: u32 = 10;

/// An ISN-capable 64-bit CRC codec for flits.
#[derive(Clone, Debug)]
pub struct IsnCrc64 {
    crc: Engine,
    mode: IsnMode,
    seq_bits: u32,
}

impl IsnCrc64 {
    /// Creates an ISN codec with the default mode ([`IsnMode::XorIntoPayload`])
    /// and the CXL 10-bit sequence-number width.
    pub fn new(spec: CrcSpec) -> Self {
        Self::with_mode(spec, IsnMode::default(), DEFAULT_SEQ_BITS)
    }

    /// Creates an ISN codec with an explicit folding mode and sequence width.
    pub fn with_mode(spec: CrcSpec, mode: IsnMode, seq_bits: u32) -> Self {
        assert!(
            (1..=16).contains(&seq_bits),
            "sequence number width must be 1..=16 bits"
        );
        assert_eq!(spec.width, 64, "ISN flit CRC must be 64 bits wide");
        IsnCrc64 {
            crc: Engine::for_spec(spec),
            mode,
            seq_bits,
        }
    }

    /// The folding mode in use.
    pub fn mode(&self) -> IsnMode {
        self.mode
    }

    /// The sequence-number width in bits.
    pub fn seq_bits(&self) -> u32 {
        self.seq_bits
    }

    /// Mask selecting the valid sequence-number bits.
    #[inline]
    pub fn seq_mask(&self) -> u16 {
        ((1u32 << self.seq_bits) - 1) as u16
    }

    /// Wraps a sequence counter to the valid range.
    #[inline]
    pub fn wrap_seq(&self, seq: u64) -> u16 {
        (seq & self.seq_mask() as u64) as u16
    }

    /// Computes the baseline (non-ISN) CRC over `header ‖ payload`, exactly as
    /// the unmodified CXL link layer does.
    pub fn encode_explicit(&self, header: &[u8], payload: &[u8]) -> u64 {
        let mut reg = self.crc.init_register();
        reg = self.crc.update(reg, header);
        reg = self.crc.update(reg, payload);
        self.crc.finalize(reg)
    }

    /// Computes the ISN CRC binding `header ‖ payload` to `seq`.
    pub fn encode(&self, header: &[u8], payload: &[u8], seq: u16) -> u64 {
        let seq = seq & self.seq_mask();
        match self.mode {
            IsnMode::XorIntoPayload => {
                assert!(
                    payload.len() >= 2,
                    "XorIntoPayload requires at least 2 payload bytes"
                );
                let mut reg = self.crc.init_register();
                reg = self.crc.update(reg, header);
                // Fold the sequence number into the first two payload bytes
                // (the low `seq_bits` bits of the payload, little-endian).
                let folded = [
                    payload[0] ^ (seq & 0xFF) as u8,
                    payload[1] ^ (seq >> 8) as u8,
                ];
                reg = self.crc.update(reg, &folded);
                reg = self.crc.update(reg, &payload[2..]);
                self.crc.finalize(reg)
            }
            IsnMode::AppendToInput => {
                let mut reg = self.crc.init_register();
                reg = self.crc.update(reg, header);
                reg = self.crc.update(reg, payload);
                reg = self.crc.update(reg, &seq.to_le_bytes());
                self.crc.finalize(reg)
            }
        }
    }

    /// Verifies a received flit: recomputes the ISN CRC with the receiver's
    /// expected sequence number and compares it to the received CRC.
    ///
    /// Returns `true` only if the payload is intact **and** the sequence
    /// numbers agree, which is exactly the pass/fail semantics of Section 5.
    #[inline]
    pub fn verify(
        &self,
        header: &[u8],
        payload: &[u8],
        expected_seq: u16,
        received_crc: u64,
    ) -> bool {
        self.encode(header, payload, expected_seq) == received_crc
    }

    /// Verifies a baseline (non-ISN) flit CRC, as the unmodified CXL link
    /// layer does: only data integrity is checked.
    #[inline]
    pub fn verify_explicit(&self, header: &[u8], payload: &[u8], received_crc: u64) -> bool {
        self.encode_explicit(header, payload) == received_crc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::FLIT_CRC64;

    fn payload(seed: u8) -> Vec<u8> {
        (0..240u32)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn matching_sequence_verifies() {
        for mode in [IsnMode::XorIntoPayload, IsnMode::AppendToInput] {
            let isn = IsnCrc64::with_mode(FLIT_CRC64, mode, 10);
            let hdr = [0x12, 0x34];
            let pl = payload(7);
            for seq in [0u16, 1, 511, 1023] {
                let crc = isn.encode(&hdr, &pl, seq);
                assert!(isn.verify(&hdr, &pl, seq, crc), "mode {mode:?} seq {seq}");
            }
        }
    }

    #[test]
    fn every_sequence_mismatch_is_detected() {
        // The paper's key claim: a SeqNum/ESeqNum mismatch *always* yields a
        // CRC mismatch because the difference pattern spans at most 10 bits.
        for mode in [IsnMode::XorIntoPayload, IsnMode::AppendToInput] {
            let isn = IsnCrc64::with_mode(FLIT_CRC64, mode, 10);
            let hdr = [0u8; 2];
            let pl = payload(3);
            let tx_seq = 137u16;
            let crc = isn.encode(&hdr, &pl, tx_seq);
            for eseq in 0..1024u16 {
                let ok = isn.verify(&hdr, &pl, eseq, crc);
                assert_eq!(ok, eseq == tx_seq, "mode {mode:?} eseq {eseq}");
            }
        }
    }

    #[test]
    fn payload_corruption_is_detected_alongside_sequence() {
        let isn = IsnCrc64::new(FLIT_CRC64);
        let hdr = [0xAA, 0x55];
        let pl = payload(11);
        let crc = isn.encode(&hdr, &pl, 42);
        let mut corrupted = pl.clone();
        corrupted[100] ^= 0x01;
        assert!(!isn.verify(&hdr, &corrupted, 42, crc));
        // Corruption in the header is covered too.
        let bad_hdr = [0xAB, 0x55];
        assert!(!isn.verify(&bad_hdr, &pl, 42, crc));
    }

    #[test]
    fn sequence_numbers_wrap_at_field_width() {
        let isn = IsnCrc64::new(FLIT_CRC64);
        let hdr = [0u8; 2];
        let pl = payload(9);
        // 1024 wraps to 0 for a 10-bit field.
        assert_eq!(isn.encode(&hdr, &pl, 1024), isn.encode(&hdr, &pl, 0));
        assert_eq!(isn.wrap_seq(1023 + 1), 0);
        assert_eq!(isn.wrap_seq(1025), 1);
        assert_eq!(isn.seq_mask(), 0x3FF);
    }

    #[test]
    fn explicit_encoding_ignores_sequence() {
        let isn = IsnCrc64::new(FLIT_CRC64);
        let hdr = [1u8, 2];
        let pl = payload(1);
        let c = isn.encode_explicit(&hdr, &pl);
        assert!(isn.verify_explicit(&hdr, &pl, c));
        // Baseline CRC equals ISN CRC with sequence zero in XOR mode: folding
        // zero is a no-op, which is what makes the construction backward
        // compatible for the very first flit.
        assert_eq!(c, isn.encode(&hdr, &pl, 0));
    }

    #[test]
    fn modes_produce_different_checksums_but_same_guarantees() {
        let xor = IsnCrc64::with_mode(FLIT_CRC64, IsnMode::XorIntoPayload, 10);
        let app = IsnCrc64::with_mode(FLIT_CRC64, IsnMode::AppendToInput, 10);
        let hdr = [0u8; 2];
        let pl = payload(5);
        let seq = 600;
        assert_ne!(xor.encode(&hdr, &pl, seq), app.encode(&hdr, &pl, seq));
        assert!(xor.verify(&hdr, &pl, seq, xor.encode(&hdr, &pl, seq)));
        assert!(app.verify(&hdr, &pl, seq, app.encode(&hdr, &pl, seq)));
    }

    #[test]
    #[should_panic]
    fn xor_mode_requires_two_payload_bytes() {
        let isn = IsnCrc64::new(FLIT_CRC64);
        let _ = isn.encode(&[0, 0], &[0xFF], 3);
    }

    #[test]
    #[should_panic]
    fn rejects_narrow_crc() {
        let _ = IsnCrc64::new(crate::catalog::CRC32_ISO_HDLC);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn round_trip_for_random_payloads(
                data in proptest::collection::vec(any::<u8>(), 2..256),
                hdr in proptest::collection::vec(any::<u8>(), 0..4),
                seq in 0u16..1024,
            ) {
                for mode in [IsnMode::XorIntoPayload, IsnMode::AppendToInput] {
                    let isn = IsnCrc64::with_mode(FLIT_CRC64, mode, 10);
                    let crc = isn.encode(&hdr, &data, seq);
                    prop_assert!(isn.verify(&hdr, &data, seq, crc));
                }
            }

            #[test]
            fn wrong_sequence_never_verifies(
                data in proptest::collection::vec(any::<u8>(), 2..256),
                seq in 0u16..1024,
                delta in 1u16..1024,
            ) {
                let isn = IsnCrc64::new(FLIT_CRC64);
                let hdr = [0u8; 2];
                let crc = isn.encode(&hdr, &data, seq);
                let wrong = (seq + delta) & isn.seq_mask();
                prop_assume!(wrong != seq);
                prop_assert!(!isn.verify(&hdr, &data, wrong, crc));
            }

            #[test]
            fn single_bit_payload_flip_never_verifies(
                data in proptest::collection::vec(any::<u8>(), 2..256),
                seq in 0u16..1024,
                flip_byte in 0usize..256,
                flip_bit in 0u8..8,
            ) {
                let isn = IsnCrc64::new(FLIT_CRC64);
                let hdr = [0u8; 2];
                let crc = isn.encode(&hdr, &data, seq);
                let mut corrupted = data.clone();
                let idx = flip_byte % corrupted.len();
                corrupted[idx] ^= 1 << flip_bit;
                prop_assert!(!isn.verify(&hdr, &corrupted, seq, crc));
            }
        }
    }
}
