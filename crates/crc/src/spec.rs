//! Parameterised CRC algorithm description.
//!
//! A CRC algorithm is fully described by the "Rocksoft model" parameters:
//! width, generator polynomial, initial register value, input/output bit
//! reflection, and the final XOR value. [`CrcSpec`] captures those parameters
//! for widths up to 64 bits and is consumed by both the bitwise and the
//! table-driven engines.

/// A CRC algorithm specification (Rocksoft / catalogue parameter model).
///
/// The polynomial is given in normal (non-reflected) representation with the
/// implicit top bit omitted, e.g. CRC-32 uses `0x04C11DB7`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CrcSpec {
    /// Width of the CRC register in bits (8..=64).
    pub width: u32,
    /// Generator polynomial (normal representation, top bit implicit).
    pub poly: u64,
    /// Initial register value.
    pub init: u64,
    /// Whether input bytes are reflected (LSB-first processing).
    pub reflect_in: bool,
    /// Whether the final register value is reflected before the XOR-out step.
    pub reflect_out: bool,
    /// Value XORed onto the register to produce the final checksum.
    pub xor_out: u64,
    /// Human-readable name for reports.
    pub name: &'static str,
}

impl CrcSpec {
    /// Creates a new spec, validating the width.
    pub const fn new(
        name: &'static str,
        width: u32,
        poly: u64,
        init: u64,
        reflect_in: bool,
        reflect_out: bool,
        xor_out: u64,
    ) -> Self {
        assert!(width >= 8 && width <= 64, "CRC width must be in 8..=64");
        CrcSpec {
            width,
            poly,
            init,
            reflect_in,
            reflect_out,
            xor_out,
            name,
        }
    }

    /// Bit mask selecting `width` low-order bits.
    #[inline]
    pub const fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// The most-significant bit of the register for this width.
    #[inline]
    pub const fn top_bit(&self) -> u64 {
        1u64 << (self.width - 1)
    }

    /// Number of whole bytes needed to store a checksum of this width.
    #[inline]
    pub const fn bytes(&self) -> usize {
        self.width.div_ceil(8) as usize
    }
}

/// Reflects (bit-reverses) the low `width` bits of `value`.
#[inline]
pub fn reflect_bits(value: u64, width: u32) -> u64 {
    let mut out = 0u64;
    for i in 0..width {
        if value & (1u64 << i) != 0 {
            out |= 1u64 << (width - 1 - i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_and_top_bit() {
        let s16 = CrcSpec::new("t16", 16, 0x1021, 0, false, false, 0);
        assert_eq!(s16.mask(), 0xFFFF);
        assert_eq!(s16.top_bit(), 0x8000);
        assert_eq!(s16.bytes(), 2);

        let s64 = CrcSpec::new("t64", 64, 0x42F0E1EBA9EA3693, 0, false, false, 0);
        assert_eq!(s64.mask(), u64::MAX);
        assert_eq!(s64.top_bit(), 1u64 << 63);
        assert_eq!(s64.bytes(), 8);
    }

    #[test]
    fn reflect_small_patterns() {
        assert_eq!(reflect_bits(0b0000_0001, 8), 0b1000_0000);
        assert_eq!(reflect_bits(0b1100_0000, 8), 0b0000_0011);
        assert_eq!(reflect_bits(0x1, 16), 0x8000);
        assert_eq!(reflect_bits(0xF0F0, 16), 0x0F0F);
    }

    #[test]
    fn reflect_is_an_involution() {
        for v in [0u64, 1, 0xDEADBEEF, u64::MAX, 0x123456789ABCDEF0] {
            for w in [8u32, 16, 32, 64] {
                let masked = if w == 64 { v } else { v & ((1 << w) - 1) };
                assert_eq!(reflect_bits(reflect_bits(masked, w), w), masked);
            }
        }
    }

    #[test]
    #[should_panic]
    fn width_out_of_range_panics() {
        let _ = CrcSpec::new("bad", 4, 0x3, 0, false, false, 0);
    }
}
