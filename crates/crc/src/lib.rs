//! # rxl-crc — CRC engines and the Implicit Sequence Number (ISN) CRC
//!
//! This crate implements the cyclic-redundancy-check machinery used by the
//! RXL reproduction of *"Scaling Out Chip Interconnect Networks with Implicit
//! Sequence Numbers"* (SC 2025):
//!
//! * a generic, parameterised CRC model ([`CrcSpec`]) covering widths from 8
//!   to 64 bits with both a reference bitwise engine ([`engine`]) and a fast
//!   table-driven engine ([`table`]),
//! * a catalog of standard algorithms ([`catalog`]) including the 64-bit CRC
//!   protecting CXL 256-byte flits, CRC-32, CRC-16, and the Internet
//!   checksum used for the TCP header-overhead comparison,
//! * the **ISN construction** ([`isn`]): folding the 10-bit flit sequence
//!   number into the CRC computation so that a sequence mismatch at the
//!   receiver manifests as a CRC error — the paper's core mechanism,
//! * error-detection analysis helpers ([`analysis`]): burst-error coverage,
//!   random multi-bit error coverage, and undetected-error-rate estimation
//!   used to reproduce the claims of Section 4.1 and Section 7.1.
//!
//! # Example: detecting a dropped flit with ISN
//!
//! ```
//! use rxl_crc::{IsnCrc64, catalog::FLIT_CRC64};
//!
//! let isn = IsnCrc64::new(FLIT_CRC64);
//! let header = [0u8; 2];
//! let payload = vec![0xAB; 240];
//!
//! // Sender: flit N and flit N+1 carry CRCs bound to their sequence numbers.
//! let crc_n1 = isn.encode(&header, &payload, 43);
//!
//! // Receiver expected flit N (seq 42) but flit N was silently dropped, so it
//! // checks flit N+1 against expected sequence number 42 — mismatch detected.
//! assert!(!isn.verify(&header, &payload, 42, crc_n1));
//! // With the correct expected sequence number the same flit verifies.
//! assert!(isn.verify(&header, &payload, 43, crc_n1));
//! ```

pub mod analysis;
pub mod catalog;
pub mod engine;
pub mod internet;
pub mod isn;
pub mod slice;
pub mod spec;
pub mod table;

pub use catalog::{Crc16, Crc32, Crc64, FLIT_CRC64};
pub use engine::BitwiseCrc;
pub use internet::internet_checksum;
pub use isn::{IsnCrc64, IsnMode};
pub use slice::{SliceBy8Crc64, FLIT_CRC64_SLICE};
pub use spec::CrcSpec;
pub use table::TableCrc;
