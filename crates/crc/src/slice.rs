//! Slice-by-8 CRC engine for 64-bit reflected algorithms.
//!
//! The byte-at-a-time table engine ([`crate::table`]) performs one table
//! lookup (plus a shift and XOR) per input byte — 250 dependent lookups per
//! 256-byte flit. Slice-by-8 processes eight bytes per step through eight
//! independent 256-entry tables whose lookups have no data dependency on one
//! another, cutting the dependency chain per 8 bytes from 8 lookups to 1 XOR
//! tree. This is the classic Intel slicing construction, specialised to the
//! fully reflected 64-bit case used by the flit CRC ([`crate::catalog::CRC64_XZ`]).
//!
//! The register is kept in *reflected* form internally (the natural form for
//! reflected algorithms, where the next input byte XORs into the low byte).
//! Checksums are bit-identical to the other engines — the construction is an
//! implementation strategy, not a different code — which the unit and
//! property tests below pin against [`TableCrc`] and [`BitwiseCrc`].
//!
//! All tables are built by a `const fn`, so the [`FLIT_CRC64_SLICE`] engine
//! is materialised at compile time and costs nothing to reference at runtime.

use crate::catalog::CRC64_XZ;
use crate::engine::BitwiseCrc;
use crate::spec::CrcSpec;

/// A slice-by-8 engine for a fully reflected 64-bit CRC.
#[derive(Clone)]
pub struct SliceBy8Crc64 {
    spec: CrcSpec,
    /// `tables[k][b]` is the CRC contribution of byte value `b` followed by
    /// `k` zero bytes; a whole aligned 8-byte chunk is folded with one lookup
    /// in each table.
    tables: [[u64; 256]; 8],
}

impl std::fmt::Debug for SliceBy8Crc64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SliceBy8Crc64")
            .field("spec", &self.spec)
            .finish()
    }
}

/// The compile-time slice-by-8 engine for the 256-byte flit CRC.
pub static FLIT_CRC64_SLICE: SliceBy8Crc64 = SliceBy8Crc64::new(CRC64_XZ);

/// The precomputed slice-by-8 engine for `spec`, if one exists.
pub fn cached_slice64(spec: &CrcSpec) -> Option<&'static SliceBy8Crc64> {
    if *spec == CRC64_XZ {
        Some(&FLIT_CRC64_SLICE)
    } else {
        None
    }
}

impl SliceBy8Crc64 {
    /// Builds the eight lookup tables for a fully reflected 64-bit spec.
    ///
    /// `const`-evaluable; panics (at compile time when used in a `const`
    /// context) unless `spec` is 64 bits wide with reflected input *and*
    /// output — the precondition for the reflected-register formulation.
    pub const fn new(spec: CrcSpec) -> Self {
        assert!(spec.width == 64, "slice-by-8 engine requires a 64-bit CRC");
        assert!(
            spec.reflect_in && spec.reflect_out,
            "slice-by-8 engine requires a fully reflected CRC"
        );
        let poly_reflected = spec.poly.reverse_bits();
        let mut tables = [[0u64; 256]; 8];
        let mut b = 0;
        while b < 256 {
            let mut crc = b as u64;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ poly_reflected
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            tables[0][b] = crc;
            b += 1;
        }
        let mut k = 1;
        while k < 8 {
            let mut b = 0;
            while b < 256 {
                let prev = tables[k - 1][b];
                tables[k][b] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
                b += 1;
            }
            k += 1;
        }
        SliceBy8Crc64 { spec, tables }
    }

    /// The algorithm parameters.
    pub const fn spec(&self) -> &CrcSpec {
        &self.spec
    }

    /// Returns the initial register value (reflected form).
    #[inline]
    pub const fn init_register(&self) -> u64 {
        // For a fully reflected algorithm the reflected register is the
        // bit-reversal of the normal-form register.
        self.spec.init.reverse_bits()
    }

    /// Feeds `data` through the register (reflected form) and returns the
    /// updated register.
    #[inline]
    pub fn update(&self, mut reg: u64, data: &[u8]) -> u64 {
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let v = reg ^ u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            reg = self.tables[7][(v & 0xFF) as usize]
                ^ self.tables[6][((v >> 8) & 0xFF) as usize]
                ^ self.tables[5][((v >> 16) & 0xFF) as usize]
                ^ self.tables[4][((v >> 24) & 0xFF) as usize]
                ^ self.tables[3][((v >> 32) & 0xFF) as usize]
                ^ self.tables[2][((v >> 40) & 0xFF) as usize]
                ^ self.tables[1][((v >> 48) & 0xFF) as usize]
                ^ self.tables[0][(v >> 56) as usize];
        }
        for &byte in chunks.remainder() {
            reg = (reg >> 8) ^ self.tables[0][((reg ^ byte as u64) & 0xFF) as usize];
        }
        reg
    }

    /// Applies the final XOR to a (reflected-form) register value.
    ///
    /// Output reflection is already implicit in the register form: for a
    /// fully reflected algorithm the reflected register *is* the
    /// output-reflected value.
    #[inline]
    pub const fn finalize(&self, reg: u64) -> u64 {
        reg ^ self.spec.xor_out
    }

    /// Computes the checksum of `data` in one call.
    #[inline]
    pub fn checksum(&self, data: &[u8]) -> u64 {
        self.finalize(self.update(self.init_register(), data))
    }

    /// Returns the bitwise reference engine for the same spec.
    pub const fn reference(&self) -> BitwiseCrc {
        BitwiseCrc::new(self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    const CHECK_INPUT: &[u8] = b"123456789";

    #[test]
    fn check_value_matches_catalogue() {
        assert_eq!(FLIT_CRC64_SLICE.checksum(CHECK_INPUT), 0x995DC9BBDF1939FA);
    }

    #[test]
    fn matches_table_engine_on_structured_data() {
        let table = crate::table::TableCrc::new(catalog::CRC64_XZ);
        for len in [0usize, 1, 2, 7, 8, 9, 15, 16, 63, 64, 240, 242, 250, 256] {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            assert_eq!(
                FLIT_CRC64_SLICE.checksum(&data),
                table.checksum(&data),
                "len {len}"
            );
        }
    }

    #[test]
    fn incremental_update_matches_one_shot_at_any_split() {
        let data: Vec<u8> = (0..1024).map(|i| (i % 251) as u8).collect();
        let one_shot = FLIT_CRC64_SLICE.checksum(&data);
        for split in [0usize, 1, 2, 7, 8, 9, 241, 242, 512, 1023, 1024] {
            let mut reg = FLIT_CRC64_SLICE.init_register();
            reg = FLIT_CRC64_SLICE.update(reg, &data[..split]);
            reg = FLIT_CRC64_SLICE.update(reg, &data[split..]);
            assert_eq!(FLIT_CRC64_SLICE.finalize(reg), one_shot, "split {split}");
        }
    }

    #[test]
    fn cached_lookup_only_matches_the_flit_spec() {
        assert!(cached_slice64(&catalog::CRC64_XZ).is_some());
        assert!(cached_slice64(&catalog::FLIT_CRC64).is_some());
        assert!(cached_slice64(&catalog::CRC64_ECMA_182).is_none());
        assert!(cached_slice64(&catalog::CRC32_ISO_HDLC).is_none());
    }

    #[test]
    #[should_panic]
    fn non_reflected_spec_is_rejected() {
        let _ = SliceBy8Crc64::new(catalog::CRC64_ECMA_182);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn slice_matches_bitwise_for_random_data(
                data in proptest::collection::vec(any::<u8>(), 0..600),
            ) {
                let bitwise = BitwiseCrc::new(catalog::CRC64_XZ);
                prop_assert_eq!(
                    FLIT_CRC64_SLICE.checksum(&data),
                    bitwise.checksum(&data)
                );
            }

            #[test]
            fn split_point_does_not_matter(
                data in proptest::collection::vec(any::<u8>(), 1..512),
                split in 0usize..512,
            ) {
                let split = split % data.len();
                let mut reg = FLIT_CRC64_SLICE.init_register();
                reg = FLIT_CRC64_SLICE.update(reg, &data[..split]);
                reg = FLIT_CRC64_SLICE.update(reg, &data[split..]);
                prop_assert_eq!(
                    FLIT_CRC64_SLICE.finalize(reg),
                    FLIT_CRC64_SLICE.checksum(&data)
                );
            }
        }
    }
}
