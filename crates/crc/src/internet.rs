//! The Internet checksum (RFC 1071) used by TCP/IP headers.
//!
//! The paper's Section 2.4 contrasts the TCP transport-layer reliability
//! machinery (32-bit SeqNum, 32-bit AckNum, 16-bit end-to-end checksum)
//! against chip-interconnect flit headers. The experiment harness for the
//! header-overhead comparison (experiment E19 in DESIGN.md) uses this
//! implementation to model the TCP checksum cost.

/// Computes the 16-bit one's-complement Internet checksum over `data`.
///
/// If the length is odd, the final byte is padded with a zero byte on the
/// right, per RFC 1071.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u16::from_be_bytes([chunk[0], chunk[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += u16::from_be_bytes([*last, 0]) as u32;
    }
    // Fold carries back into the low 16 bits until none remain.
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Verifies data that has the checksum embedded (sum over data including the
/// checksum field must be 0xFFFF before complement, i.e. the computed
/// checksum over the whole buffer is zero).
pub fn internet_checksum_valid(data_with_checksum: &[u8]) -> bool {
    internet_checksum(data_with_checksum) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // The classic example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7
        // sum to ddf2 (before complement).
        let data = [0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7];
        assert_eq!(internet_checksum(&data), !0xDDF2);
    }

    #[test]
    fn zero_data_checksums_to_all_ones() {
        assert_eq!(internet_checksum(&[0u8; 20]), 0xFFFF);
    }

    #[test]
    fn odd_length_is_padded() {
        // Padding with an explicit zero must not change the result.
        let odd = [0x12u8, 0x34, 0x56];
        let padded = [0x12u8, 0x34, 0x56, 0x00];
        assert_eq!(internet_checksum(&odd), internet_checksum(&padded));
    }

    #[test]
    fn embedding_the_checksum_validates() {
        let mut segment = vec![0x45u8, 0x00, 0x01, 0x23, 0xAB, 0xCD, 0x00, 0x00, 0x10, 0x11];
        let ck = internet_checksum(&segment);
        // Store the checksum in the two zero bytes at offset 6..8.
        segment[6..8].copy_from_slice(&ck.to_be_bytes());
        assert!(internet_checksum_valid(&segment));
        // Any corruption breaks validation.
        segment[0] ^= 0x01;
        assert!(!internet_checksum_valid(&segment));
    }

    #[test]
    fn detects_single_byte_errors_but_not_reordering_of_words() {
        // A known weakness versus CRC: swapping two aligned 16-bit words is
        // undetected. Documenting this behaviour guards against regressions
        // in the comparison harness.
        let a = [0x11u8, 0x22, 0x33, 0x44];
        let b = [0x33u8, 0x44, 0x11, 0x22];
        assert_eq!(internet_checksum(&a), internet_checksum(&b));
        let c = [0x11u8, 0x22, 0x33, 0x45];
        assert_ne!(internet_checksum(&a), internet_checksum(&c));
    }
}
