//! Reference bitwise CRC engine.
//!
//! Processes input one bit at a time. This engine is the correctness
//! reference: the table-driven engine in [`crate::table`] is validated
//! against it, and the analysis helpers use whichever is convenient.

use crate::spec::{reflect_bits, CrcSpec};

/// A bit-at-a-time CRC engine for any [`CrcSpec`].
#[derive(Clone, Copy, Debug)]
pub struct BitwiseCrc {
    spec: CrcSpec,
}

impl BitwiseCrc {
    /// Creates an engine for the given algorithm.
    pub const fn new(spec: CrcSpec) -> Self {
        BitwiseCrc { spec }
    }

    /// The algorithm parameters.
    pub const fn spec(&self) -> &CrcSpec {
        &self.spec
    }

    /// Computes the checksum of `data` in one call.
    pub fn checksum(&self, data: &[u8]) -> u64 {
        let reg = self.update(self.init_register(), data);
        self.finalize(reg)
    }

    /// Returns the initial (pre-finalisation) register value.
    #[inline]
    pub fn init_register(&self) -> u64 {
        self.spec.init & self.spec.mask()
    }

    /// Feeds `data` through the register and returns the updated register.
    pub fn update(&self, mut reg: u64, data: &[u8]) -> u64 {
        let spec = &self.spec;
        let top = spec.top_bit();
        let mask = spec.mask();
        for &byte in data {
            let b = if spec.reflect_in {
                byte.reverse_bits()
            } else {
                byte
            };
            reg ^= (b as u64) << (spec.width - 8);
            for _ in 0..8 {
                if reg & top != 0 {
                    reg = ((reg << 1) ^ spec.poly) & mask;
                } else {
                    reg = (reg << 1) & mask;
                }
            }
        }
        reg
    }

    /// Applies output reflection and the final XOR to a register value.
    #[inline]
    pub fn finalize(&self, mut reg: u64) -> u64 {
        if self.spec.reflect_out {
            reg = reflect_bits(reg, self.spec.width);
        }
        (reg ^ self.spec.xor_out) & self.spec.mask()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    /// The standard "check" input from the CRC catalogue.
    const CHECK_INPUT: &[u8] = b"123456789";

    #[test]
    fn crc32_check_value() {
        let e = BitwiseCrc::new(catalog::CRC32_ISO_HDLC);
        assert_eq!(e.checksum(CHECK_INPUT), 0xCBF43926);
    }

    #[test]
    fn crc16_ccitt_false_check_value() {
        let e = BitwiseCrc::new(catalog::CRC16_CCITT_FALSE);
        assert_eq!(e.checksum(CHECK_INPUT), 0x29B1);
    }

    #[test]
    fn crc16_ibm_check_value() {
        let e = BitwiseCrc::new(catalog::CRC16_ARC);
        assert_eq!(e.checksum(CHECK_INPUT), 0xBB3D);
    }

    #[test]
    fn crc64_xz_check_value() {
        let e = BitwiseCrc::new(catalog::CRC64_XZ);
        assert_eq!(e.checksum(CHECK_INPUT), 0x995DC9BBDF1939FA);
    }

    #[test]
    fn crc64_ecma_182_check_value() {
        let e = BitwiseCrc::new(catalog::CRC64_ECMA_182);
        assert_eq!(e.checksum(CHECK_INPUT), 0x6C40DF5F0B497347);
    }

    #[test]
    fn crc8_check_value() {
        let e = BitwiseCrc::new(catalog::CRC8_SMBUS);
        assert_eq!(e.checksum(CHECK_INPUT), 0xF4);
    }

    #[test]
    fn incremental_update_matches_one_shot() {
        let e = BitwiseCrc::new(catalog::CRC64_XZ);
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let one_shot = e.checksum(&data);
        let mut reg = e.init_register();
        for chunk in data.chunks(7) {
            reg = e.update(reg, chunk);
        }
        assert_eq!(e.finalize(reg), one_shot);
    }

    #[test]
    fn empty_input_yields_init_xor_out() {
        // For a non-reflected spec with init == 0, the checksum of the empty
        // message is just xor_out.
        let spec = crate::spec::CrcSpec::new(
            "plain64",
            64,
            catalog::CRC64_ECMA_182.poly,
            0,
            false,
            false,
            0,
        );
        let e = BitwiseCrc::new(spec);
        assert_eq!(e.checksum(&[]), 0);
    }

    #[test]
    fn single_bit_change_always_changes_checksum() {
        let e = BitwiseCrc::new(catalog::FLIT_CRC64);
        let base = vec![0x5Au8; 64];
        let c0 = e.checksum(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut m = base.clone();
                m[byte] ^= 1 << bit;
                assert_ne!(
                    e.checksum(&m),
                    c0,
                    "undetected single-bit error at {byte}.{bit}"
                );
            }
        }
    }
}
