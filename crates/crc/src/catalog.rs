//! Catalogue of standard CRC algorithms used across the repository.
//!
//! The CXL 3.x specification protects each 256-byte flit with an 8-byte CRC
//! computed over the 2-byte header and 240-byte payload (Section 4.1 of the
//! paper). The exact polynomial is not reproduced in the paper, so this
//! reproduction uses the widely deployed CRC-64/XZ (ECMA-182 polynomial with
//! reflected I/O) as [`FLIT_CRC64`]. The reliability analysis only depends on
//! the CRC being a "good" 64-bit code (undetected error fraction ≈ 2⁻⁶⁴ and
//! full coverage of bursts up to 64 bits), which holds for this choice and is
//! verified empirically by `rxl-crc::analysis` and the `table_crc_detection`
//! experiment harness.

use crate::spec::CrcSpec;
use crate::table::TableCrc;

/// CRC-64/XZ (a.k.a. CRC-64/GO-ECMA): ECMA-182 polynomial, reflected,
/// init/xorout all-ones. Check value for "123456789": `0x995DC9BBDF1939FA`.
pub const CRC64_XZ: CrcSpec = CrcSpec::new(
    "CRC-64/XZ",
    64,
    0x42F0_E1EB_A9EA_3693,
    u64::MAX,
    true,
    true,
    u64::MAX,
);

/// CRC-64/ECMA-182 (non-reflected, zero init). Check value:
/// `0x6C40DF5F0B497347`.
pub const CRC64_ECMA_182: CrcSpec = CrcSpec::new(
    "CRC-64/ECMA-182",
    64,
    0x42F0_E1EB_A9EA_3693,
    0,
    false,
    false,
    0,
);

/// The 64-bit CRC used for CXL/RXL 256-byte flits in this reproduction.
pub const FLIT_CRC64: CrcSpec = CRC64_XZ;

/// CRC-32/ISO-HDLC (the ubiquitous zlib/Ethernet CRC-32).
/// Check value: `0xCBF43926`.
pub const CRC32_ISO_HDLC: CrcSpec = CrcSpec::new(
    "CRC-32/ISO-HDLC",
    32,
    0x04C1_1DB7,
    0xFFFF_FFFF,
    true,
    true,
    0xFFFF_FFFF,
);

/// CRC-16/CCITT-FALSE (used by the 68-byte flit format in this reproduction).
/// Check value: `0x29B1`.
pub const CRC16_CCITT_FALSE: CrcSpec =
    CrcSpec::new("CRC-16/CCITT-FALSE", 16, 0x1021, 0xFFFF, false, false, 0);

/// CRC-16/ARC (IBM). Check value: `0xBB3D`.
pub const CRC16_ARC: CrcSpec = CrcSpec::new("CRC-16/ARC", 16, 0x8005, 0, true, true, 0);

/// CRC-8/SMBUS. Check value: `0xF4`.
pub const CRC8_SMBUS: CrcSpec = CrcSpec::new("CRC-8/SMBus", 8, 0x07, 0, false, false, 0);

// Precomputed table-driven engines for every catalogue algorithm. The lookup
// tables are evaluated at compile time (`TableCrc::new` is `const`), so
// borrowing one of these — or copying it into a wrapper — never rebuilds the
// 256-entry table at runtime. The hot paths (flit codecs, switches, the
// Monte-Carlo simulators) construct engines per endpoint per trial, which
// made the old run-time table build a measurable cost.

/// Compile-time CRC-64/XZ (= [`FLIT_CRC64`]) engine.
pub static CRC64_XZ_ENGINE: TableCrc = TableCrc::new(CRC64_XZ);
/// Compile-time CRC-64/ECMA-182 engine.
pub static CRC64_ECMA_182_ENGINE: TableCrc = TableCrc::new(CRC64_ECMA_182);
/// Compile-time CRC-32/ISO-HDLC engine.
pub static CRC32_ISO_HDLC_ENGINE: TableCrc = TableCrc::new(CRC32_ISO_HDLC);
/// Compile-time CRC-16/CCITT-FALSE engine (the 68-byte flit CRC).
pub static CRC16_CCITT_FALSE_ENGINE: TableCrc = TableCrc::new(CRC16_CCITT_FALSE);
/// Compile-time CRC-16/ARC engine.
pub static CRC16_ARC_ENGINE: TableCrc = TableCrc::new(CRC16_ARC);
/// Compile-time CRC-8/SMBus engine.
pub static CRC8_SMBUS_ENGINE: TableCrc = TableCrc::new(CRC8_SMBUS);

/// The precomputed engine for `spec`, if it is a catalogue algorithm.
pub fn cached_engine(spec: &CrcSpec) -> Option<&'static TableCrc> {
    // FLIT_CRC64 is an alias of CRC64_XZ, so it hits the first arm.
    match *spec {
        s if s == CRC64_XZ => Some(&CRC64_XZ_ENGINE),
        s if s == CRC64_ECMA_182 => Some(&CRC64_ECMA_182_ENGINE),
        s if s == CRC32_ISO_HDLC => Some(&CRC32_ISO_HDLC_ENGINE),
        s if s == CRC16_CCITT_FALSE => Some(&CRC16_CCITT_FALSE_ENGINE),
        s if s == CRC16_ARC => Some(&CRC16_ARC_ENGINE),
        s if s == CRC8_SMBUS => Some(&CRC8_SMBUS_ENGINE),
        _ => None,
    }
}

/// A table-driven engine for `spec`: a copy of the precomputed table for
/// catalogue algorithms, a fresh table build otherwise.
pub fn engine_for(spec: CrcSpec) -> TableCrc {
    match cached_engine(&spec) {
        Some(engine) => engine.clone(),
        None => TableCrc::new(spec),
    }
}

/// Convenience wrapper: a CRC-64 flit CRC.
///
/// Checksums route through the compile-time slice-by-8 engine
/// ([`crate::slice::SliceBy8Crc64`]) when one is cached for the spec (the
/// flit CRC always is — construction is then just a reference copy), and
/// fall back to a boxed byte-at-a-time [`TableCrc`] otherwise. Both produce
/// identical checksums. For incremental (multi-`update`) use, reach for
/// [`TableCrc`] or the catalogue statics directly.
#[derive(Clone, Debug)]
pub struct Crc64 {
    engine: Crc64Engine,
}

#[derive(Clone, Debug)]
enum Crc64Engine {
    Fast(&'static crate::slice::SliceBy8Crc64),
    Table(Box<TableCrc>),
}

impl Crc64 {
    /// Creates the default flit CRC-64 engine.
    pub fn flit() -> Self {
        Crc64 {
            engine: Crc64Engine::Fast(&crate::slice::FLIT_CRC64_SLICE),
        }
    }

    /// Creates a CRC-64 engine for an arbitrary 64-bit spec.
    pub fn with_spec(spec: CrcSpec) -> Self {
        assert_eq!(spec.width, 64, "Crc64 requires a 64-bit spec");
        let engine = match crate::slice::cached_slice64(&spec) {
            Some(fast) => Crc64Engine::Fast(fast),
            None => Crc64Engine::Table(Box::new(engine_for(spec))),
        };
        Crc64 { engine }
    }

    /// Computes the checksum of `data`.
    #[inline]
    pub fn checksum(&self, data: &[u8]) -> u64 {
        match &self.engine {
            Crc64Engine::Fast(fast) => fast.checksum(data),
            Crc64Engine::Table(table) => table.checksum(data),
        }
    }
}

impl Default for Crc64 {
    fn default() -> Self {
        Self::flit()
    }
}

/// Convenience wrapper: a table-driven CRC-32.
#[derive(Clone, Debug)]
pub struct Crc32 {
    engine: TableCrc,
}

impl Crc32 {
    /// Creates the standard CRC-32/ISO-HDLC engine.
    pub fn new() -> Self {
        Crc32 {
            engine: CRC32_ISO_HDLC_ENGINE.clone(),
        }
    }

    /// Computes the checksum of `data`.
    #[inline]
    pub fn checksum(&self, data: &[u8]) -> u32 {
        self.engine.checksum(data) as u32
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// Convenience wrapper: a table-driven CRC-16 (CCITT-FALSE), used for the
/// 68-byte reduced-latency flit format.
#[derive(Clone, Debug)]
pub struct Crc16 {
    engine: TableCrc,
}

impl Crc16 {
    /// Creates the CRC-16/CCITT-FALSE engine.
    pub fn new() -> Self {
        Crc16 {
            engine: CRC16_CCITT_FALSE_ENGINE.clone(),
        }
    }

    /// Computes the checksum of `data`.
    #[inline]
    pub fn checksum(&self, data: &[u8]) -> u16 {
        self.engine.checksum(data) as u16
    }
}

impl Default for Crc16 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrappers_match_raw_engines() {
        let data: Vec<u8> = (0..240u32).map(|i| (i * 7) as u8).collect();
        assert_eq!(
            Crc64::flit().checksum(&data),
            TableCrc::new(FLIT_CRC64).checksum(&data)
        );
        assert_eq!(
            Crc32::new().checksum(&data) as u64,
            TableCrc::new(CRC32_ISO_HDLC).checksum(&data)
        );
        assert_eq!(
            Crc16::new().checksum(&data) as u64,
            TableCrc::new(CRC16_CCITT_FALSE).checksum(&data)
        );
    }

    #[test]
    fn flit_crc_is_64_bits_wide() {
        assert_eq!(FLIT_CRC64.width, 64);
        assert_eq!(FLIT_CRC64.bytes(), 8);
    }

    #[test]
    #[should_panic]
    fn crc64_wrapper_rejects_narrow_spec() {
        let _ = Crc64::with_spec(CRC32_ISO_HDLC);
    }

    #[test]
    fn distinct_specs_produce_distinct_checksums() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let a = TableCrc::new(CRC64_XZ).checksum(data);
        let b = TableCrc::new(CRC64_ECMA_182).checksum(data);
        assert_ne!(a, b);
    }
}
