//! Full-stack integration tests: transaction messages → flits → links →
//! switches → endpoint, across protocol variants and error regimes.

use rxl::link::{ChannelErrorModel, ProtocolVariant};
use rxl::sim::{request_stream, response_stream, PathSim, SimConfig, TrafficPattern};

fn run(variant: ProtocolVariant, levels: u32, ber: f64, seed: u64) -> rxl::sim::SimReport {
    let config = SimConfig::new(variant, levels)
        .with_channel(if ber > 0.0 {
            ChannelErrorModel::random(ber)
        } else {
            ChannelErrorModel::ideal()
        })
        .with_seed(seed);
    let down = request_stream(600, TrafficPattern::DataStream { cqids: 8 }, seed + 1);
    let up = response_stream(300, 8, seed + 2);
    PathSim::new(config).run(&down, &up)
}

#[test]
fn clean_channels_are_failure_free_for_every_variant_and_depth() {
    for variant in [
        ProtocolVariant::CxlPiggyback,
        ProtocolVariant::CxlStandaloneAck,
        ProtocolVariant::Rxl,
    ] {
        for levels in [0u32, 1, 2] {
            let report = run(variant, levels, 0.0, 1);
            assert!(report.drained, "{variant:?}/{levels} did not drain");
            assert!(
                report.total_failures().is_clean(),
                "{variant:?}/{levels}: {:?}",
                report.total_failures()
            );
        }
    }
}

#[test]
fn rxl_delivers_every_message_exactly_once_in_order_despite_drops() {
    // The paper's end-to-end guarantee, exercised across several seeds and
    // depths at an accelerated BER where switch drops definitely occur.
    let mut total_drops = 0;
    for seed in 0..5u64 {
        for levels in [1u32, 2] {
            let report = run(ProtocolVariant::Rxl, levels, 3e-4, 100 + seed);
            assert!(report.drained, "seed {seed} levels {levels} did not drain");
            let failures = report.total_failures();
            assert!(
                failures.is_clean(),
                "seed {seed} levels {levels}: {failures:?}"
            );
            total_drops += report.switches.flits_dropped_uncorrectable;
        }
    }
    assert!(
        total_drops > 0,
        "the accelerated channel must actually provoke silent switch drops"
    );
}

#[test]
fn cxl_piggyback_accumulates_failures_with_switching_depth() {
    // Aggregate over seeds: deeper switching means more silent drops and
    // therefore more application-visible failures for baseline CXL.
    //
    // The comparison must run in the *linear* error regime (BER low enough
    // that most trials survive). At an accelerated BER like 3e-4 nearly every
    // trial desyncs at every depth, each desync costs roughly half the
    // workload regardless of where it happened, and the depth effect drowns
    // in saturation — measured over 200 seeds, 1 level and 3 levels become
    // statistically indistinguishable there. At BER 1e-4 the per-trial
    // failure probability is small and scales with the number of switch
    // traversals, which is the paper's actual claim.
    let mut failures_by_depth = Vec::new();
    let mut drops_by_depth = Vec::new();
    for levels in [1u32, 3] {
        let mut total = 0u64;
        let mut drops = 0u64;
        for seed in 0..40u64 {
            let report = run(ProtocolVariant::CxlPiggyback, levels, 1e-4, 200 + seed);
            let f = report.total_failures();
            total +=
                f.ordering_failures + f.duplicate_deliveries + f.lost_messages + f.data_failures;
            drops += report.switches.flits_dropped_uncorrectable;
        }
        failures_by_depth.push(total);
        drops_by_depth.push(drops);
    }
    assert!(
        failures_by_depth[0] > 0,
        "one switch level must already produce failures at this BER"
    );
    assert!(
        failures_by_depth[1] >= failures_by_depth[0],
        "three levels should not produce fewer failures than one: {failures_by_depth:?}"
    );
    // The mechanism behind the failures must also scale: deeper paths see
    // strictly more silent switch drops.
    assert!(
        drops_by_depth[1] > drops_by_depth[0],
        "three levels must drop more flits than one: {drops_by_depth:?}"
    );
}

#[test]
fn cxl_standalone_ack_is_reliable_but_spends_reverse_bandwidth() {
    let noisy = run(ProtocolVariant::CxlStandaloneAck, 1, 3e-4, 42);
    assert!(noisy.drained);
    assert!(
        noisy.total_failures().is_clean(),
        "{:?}",
        noisy.total_failures()
    );
    // The price: standalone ACK flits appear on the wire.
    let acks = noisy.host_link.standalone_acks_sent + noisy.device_link.standalone_acks_sent;
    let rxl = run(ProtocolVariant::Rxl, 1, 3e-4, 42);
    let rxl_acks = rxl.host_link.standalone_acks_sent + rxl.device_link.standalone_acks_sent;
    assert!(
        acks > rxl_acks,
        "standalone-ACK CXL must emit more dedicated ACK flits than RXL ({acks} vs {rxl_acks})"
    );
}

#[test]
fn switch_drop_rate_tracks_the_analytic_uncorrectable_rate() {
    // At an accelerated BER the drop rate measured at the switch should be in
    // the same ballpark as the probability that a flit has an uncorrectable
    // error pattern. This ties the simulator to the analytic FER_UC concept
    // without requiring the (unobservable) paper operating point.
    let mut drops = 0u64;
    let mut forwarded = 0u64;
    for seed in 0..4u64 {
        let report = run(ProtocolVariant::Rxl, 1, 1e-3, 300 + seed);
        drops += report.switches.flits_dropped_uncorrectable;
        forwarded += report.switches.flits_forwarded;
    }
    let rate = drops as f64 / (drops + forwarded) as f64;
    // At BER 1e-3 a 2048-bit flit averages ~2 bit errors; spread over the
    // three interleaved FEC ways, roughly a third of flits overload some way
    // and about two thirds of those are detected and dropped (Section 2.5).
    // The expected silent-drop rate is therefore in the vicinity of 25%; the
    // assertion checks order-of-magnitude agreement, not precision.
    assert!(rate > 0.05, "drop rate suspiciously low: {rate}");
    assert!(rate < 0.45, "drop rate suspiciously high: {rate}");
}
