//! E02–E05 — integration reproduction of the paper's failure-scenario figures
//! using the experiment harness (which itself drives the real link-layer
//! state machines).

use rxl_bench::{fig4_scenario, fig5a_scenario, fig5b_scenario, fig6_isn_scenario};

#[test]
fn fig4_baseline_cxl_misses_the_drop_until_the_next_explicit_fsn() {
    let out = fig4_scenario();
    assert!(
        !out.drop_detected_immediately,
        "baseline CXL must not detect the drop on the ACK-carrying flit"
    );
    // The mis-forwarded flit (tag 2) is delivered before the dropped flit's
    // content (tag 1), and again after the replay.
    assert_eq!(out.delivered_tags, vec![0, 2, 1, 2, 3]);
    assert_eq!(out.duplicates, 1);
}

#[test]
fn fig5a_duplicate_request_reaches_the_application_layer() {
    let out = fig5a_scenario();
    assert_eq!(
        out.duplicates, 1,
        "request C must be executed twice:\n{}",
        out.trace
    );
}

#[test]
fn fig5b_same_cqid_data_is_reordered() {
    let out = fig5b_scenario();
    assert!(out.ordering_failures >= 1, "trace:\n{}", out.trace);
}

#[test]
fn fig6_rxl_catches_the_drop_immediately_and_delivers_exactly_once_in_order() {
    let out = fig6_isn_scenario();
    assert!(out.drop_detected_immediately);
    assert_eq!(out.duplicates, 0);
    assert_eq!(out.ordering_failures, 0);
    assert_eq!(out.delivered_tags, vec![0, 1, 2, 3]);
}

#[test]
fn the_same_traffic_fails_under_cxl_and_succeeds_under_rxl() {
    // The four scenarios share the same drop pattern; the only difference is
    // the protocol. This is the paper's core claim in one assertion.
    let cxl = fig5b_scenario();
    let rxl = fig6_isn_scenario();
    assert!(cxl.duplicates + cxl.ordering_failures > 0);
    assert_eq!(rxl.duplicates + rxl.ordering_failures, 0);
}
