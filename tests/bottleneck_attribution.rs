//! Bottleneck-attribution integration: the spatial metrics layer must name
//! the physically saturated link, not just locate the knee on the load axis.
//!
//! The scenario is the canonical incast: both leaf-0 hosts blast the leaf-1
//! devices of the two-leaf pod, downstream-only. By path conservation every
//! data flit crosses *both* trunks (up leaf 0 → spine, down spine → leaf 1),
//! so trunk utilizations tie exactly and utilization alone cannot rank them.
//! But the backlog queues at the congestion root — the leaf-0 → spine
//! uplink — so every credit stall lands there, and the stall-pressure term
//! of the bottleneck score breaks the tie in its favour. A shallow
//! `queue_capacity` keeps that backlog visible as stalls rather than
//! silently absorbed buffering.

use rxl::fabric::{FabricConfig, FabricTopology};
use rxl::link::{ChannelErrorModel, ProtocolVariant};
use rxl::load::{ArrivalProcess, LoadSweep, LoadSweepConfig, TrafficMatrix};
use rxl::telemetry::AttributedSweep;

fn incast_sweep(loads: Vec<f64>) -> (FabricTopology, LoadSweep) {
    let topology = FabricTopology::leaf_spine(2, 1, 2);
    let config = FabricConfig {
        queue_capacity: 8,
        ..FabricConfig::new(ProtocolVariant::Rxl)
            .with_channel(ChannelErrorModel::ideal())
            .with_seed(0xB0_77_1E)
    };
    let sweep = LoadSweep::new(
        topology.clone(),
        config,
        LoadSweepConfig {
            loads,
            messages_per_session: 600,
            trials: 2,
            matrix: TrafficMatrix::Incast { leaf: 1 },
            arrival: ArrivalProcess::fixed(1.0),
            ..LoadSweepConfig::default()
        },
    );
    (topology, sweep)
}

#[test]
fn incast_attribution_names_the_leaf0_uplink() {
    // A ladder that brackets the trunk's line-rate crossing (two hosts
    // inject downstream-only, so the uplink saturates at load 0.5).
    let (topology, sweep) = incast_sweep(vec![0.2, 0.4, 0.8]);
    let attributed = AttributedSweep::run(&sweep, 3);
    let uplink = topology
        .trunk_between(0, 2)
        .expect("leaf 0 attaches to the spine")
        .index();

    let saturated = attributed.rungs.last().expect("ladder is non-empty");
    assert_eq!(
        saturated.top[0].link, uplink,
        "top-ranked bottleneck must be the leaf-0 uplink: {:?}",
        saturated.top
    );
    assert!(
        saturated.top[0].stall_slots > 0,
        "saturation must surface as credit stalls"
    );
    // Path conservation: the return trunk carried the same flits but took
    // none of the stall pressure, so it ranks strictly below.
    let other_trunk = attributed.rungs.last().unwrap().top[1..]
        .iter()
        .find(|l| !l.endpoint_link)
        .expect("second trunk appears in the top-k");
    assert!(saturated.top[0].score > other_trunk.score);
    assert!(saturated.top[0].stall_slots > other_trunk.stall_slots);

    // Every rung carries non-empty attribution, and if the sweep crossed a
    // knee the knee rung's report names the same uplink.
    assert!(attributed.rungs.iter().all(|r| !r.top.is_empty()));
    if let Some(knee) = attributed.knee_attribution() {
        assert_eq!(knee.top[0].link, uplink);
        assert!(!knee.top.is_empty());
    }
}

#[test]
fn light_load_attribution_reports_no_stalls() {
    // Far below saturation the analyzer must not invent pressure: top links
    // exist (attribution is always non-empty) but carry zero stall slots.
    let (_, sweep) = incast_sweep(vec![0.1]);
    let attributed = AttributedSweep::run(&sweep, 3);
    let rung = &attributed.rungs[0];
    assert!(!rung.top.is_empty());
    assert!(
        rung.top.iter().all(|l| l.stall_slots == 0),
        "load 0.1 should not stall an 8-deep queue: {:?}",
        rung.top
    );
    assert!(attributed.report.knee.is_none());
}
