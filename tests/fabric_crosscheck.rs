//! Integration tests pinning the fabric simulator to the analytic model —
//! the acceptance contract of the `rxl-fabric` subsystem:
//!
//! 1. at an accelerated BER in the linear error regime, the empirical
//!    per-device `Fail_order` rate of a baseline-CXL fabric agrees with
//!    `FabricSpec`'s analytic projection within the Monte-Carlo confidence
//!    interval;
//! 2. the conditional blind-spot probability (undetected fraction of
//!    eligible drops) matches the measured ACK-coalescing fraction on a
//!    deeper topology, where episode overlap makes the headline rate
//!    nonlinear;
//! 3. an RXL fabric observes zero protocol failures, matching its ~2⁻⁶⁴
//!    projection;
//! 4. a fixed base seed reproduces bit-identical aggregate counts no matter
//!    how many worker threads run the trials.

use rxl::analysis::ReliabilityModel;
use rxl::fabric::{
    FabricConfig, FabricMonteCarlo, FabricTopology, FabricWorkload, FitCrosscheck, RoutingTable,
};
use rxl::link::{ChannelErrorModel, ProtocolVariant};
use rxl::prelude::{FabricSpec, ProtocolKind};

fn run_ring_crosscheck(
    variant: ProtocolVariant,
    ber: f64,
    trials: u64,
    messages: usize,
) -> (rxl::fabric::FabricMonteCarloReport, FitCrosscheck, u32) {
    let topology = FabricTopology::ring(4, 1, 1);
    let routing = RoutingTable::new(&topology);
    let hops = routing
        .uniform_session_depth(&topology)
        .expect("ring sessions share one depth");
    let config = FabricConfig::new(variant)
        .with_channel(ChannelErrorModel::random(ber))
        .with_seed(0xFAB);
    let workload = FabricWorkload::symmetric(topology.session_count(), messages, 8, 7);
    let report = FabricMonteCarlo::new(topology, config, trials).run(&workload);
    let crosscheck = FitCrosscheck::new(&report, variant, hops, ber);
    (report, crosscheck, hops)
}

/// Acceptance criterion: the empirical per-device failure rate agrees with
/// the analytic projection within the Monte-Carlo confidence interval.
///
/// BER 7×10⁻⁵ keeps the fabric in the linear error regime (drop episodes
/// rarely overlap), where the paper's first-order `levels × FER_UC ×
/// p_coalescing` model is valid; 50 trials of 4 concurrent sessions give
/// ~20 expected `Fail_order` events, enough statistical power for a
/// meaningful 3σ comparison.
#[test]
fn cxl_fabric_fail_order_rate_matches_fabricspec_projection() {
    let ber = 7e-5;
    let (report, cc, hops) = run_ring_crosscheck(ProtocolVariant::CxlPiggyback, ber, 50, 1_500);

    assert!(
        report.undetected_drop_events >= 10,
        "statistical power requires events, got {}",
        report.undetected_drop_events
    );
    assert!(cc.empirical_fit > 0.0);

    // The analytic side of the crosscheck is FabricSpec's own projection at
    // the measured accelerated operating point.
    let spec = FabricSpec {
        kind: ProtocolKind::Cxl,
        devices: 16_384,
        switch_levels: hops,
        vc_count: 1,
        adaptive: false,
        model: ReliabilityModel {
            ber,
            fer_uc: cc.measured_drop_rate,
            p_coalescing: cc.measured_p_coalescing,
            ..ReliabilityModel::cxl3_x16()
        },
    };
    let per_device = spec.per_device_fit();
    assert!(
        (per_device - cc.analytic_fit).abs() <= 1e-9 * per_device,
        "crosscheck must evaluate FabricSpec's projection: {per_device} vs {}",
        cc.analytic_fit
    );

    // The agreement itself: within 3 standard errors of the Monte-Carlo
    // estimate, and within ±50% in ratio terms as an absolute sanity band.
    assert!(
        cc.agrees_within(3.0),
        "empirical {:.3e} vs analytic {:.3e} (stderr {:.3e})",
        cc.empirical_failure_rate,
        cc.analytic_failure_rate,
        cc.failure_rate_stderr
    );
    let ratio = cc.ratio();
    assert!(
        (0.5..1.5).contains(&ratio),
        "empirical/analytic ratio {ratio:.3} outside the sanity band"
    );
}

/// On a deeper (three-level) leaf–spine fabric the headline rate leaves the
/// linear regime (drop episodes overlap), but the conditional invariant
/// behind Eqn (7) still holds exactly: of the drops that strike while the
/// receiver is in normal flow, the fraction that goes undetected is the
/// probability that the successor flit carries a piggybacked ACK.
#[test]
fn blind_spot_fraction_of_eligible_drops_matches_p_coalescing() {
    let topology = FabricTopology::leaf_spine(2, 2, 1);
    let routing = RoutingTable::new(&topology);
    assert_eq!(routing.uniform_session_depth(&topology), Some(3));
    let config = FabricConfig::new(ProtocolVariant::CxlPiggyback)
        .with_channel(ChannelErrorModel::random(1e-4))
        .with_seed(0xFAB);
    let workload = FabricWorkload::symmetric(topology.session_count(), 1_200, 8, 7);
    let report = FabricMonteCarlo::new(topology, config, 40).run(&workload);

    let eligible = report.eligible_payload_drops;
    assert!(eligible >= 50, "need eligible drops, got {eligible}");
    let observed = report.undetected_drop_events as f64 / eligible as f64;
    let p = report.links.measured_p_coalescing();
    // Binomial 3σ around the measured coalescing fraction.
    let sigma = (p * (1.0 - p) / eligible as f64).sqrt();
    assert!(
        (observed - p).abs() <= 3.0 * sigma + 0.01,
        "undetected fraction {observed:.4} vs p_coalescing {p:.4} (sigma {sigma:.4})"
    );
    // The second-order replay-leak channel exists and is tracked separately.
    assert!(report.replay_leak_events > 0);
}

/// RXL on the same noisy fabric: every silent drop is retried, nothing
/// reaches the application mis-ordered, and the projection it must agree
/// with is ~2⁻⁶⁴ of the drop rate — i.e. zero at any observable scale.
#[test]
fn rxl_fabric_observes_zero_failures_matching_its_projection() {
    let (report, cc, _) = run_ring_crosscheck(ProtocolVariant::Rxl, 1e-4, 10, 600);
    assert_eq!(report.drained_trials, report.trials);
    assert!(report.failures.is_clean(), "{:?}", report.failures);
    assert_eq!(report.undetected_drop_events, 0);
    assert!(
        report.switches.flits_dropped_uncorrectable > 0,
        "the channel must actually drop flits for the comparison to mean anything"
    );
    assert!(cc.analytic_failure_rate < 1e-15);
    assert!(cc.agrees_within(1.0));
}

/// Acceptance criterion: a fixed base seed reproduces identical aggregate
/// counts for 1-thread and N-thread runs.
#[test]
fn fixed_seed_reproduces_identical_counts_across_thread_counts() {
    let topology = FabricTopology::leaf_spine(2, 2, 1);
    let config = FabricConfig::new(ProtocolVariant::CxlPiggyback)
        .with_channel(ChannelErrorModel::random(2e-4))
        .with_seed(0xC0FFEE);
    let mc = FabricMonteCarlo::new(topology, config, 6);
    let workload = FabricWorkload::symmetric(2, 150, 8, 11);

    let run_with_threads = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("shim pool build is infallible");
        pool.install(|| mc.run(&workload))
    };

    let reference = run_with_threads(1);
    for threads in [2, 8] {
        let report = run_with_threads(threads);
        assert_eq!(report.failures, reference.failures, "{threads} threads");
        assert_eq!(report.links, reference.links, "{threads} threads");
        assert_eq!(report.switches, reference.switches, "{threads} threads");
        assert_eq!(
            report.undetected_drop_events, reference.undetected_drop_events,
            "{threads} threads"
        );
        assert_eq!(
            report.protocol_flit_drops, reference.protocol_flit_drops,
            "{threads} threads"
        );
        assert_eq!(
            report.event_rates, reference.event_rates,
            "{threads} threads"
        );
        assert_eq!(
            report.drained_trials, reference.drained_trials,
            "{threads} threads"
        );
    }
}
