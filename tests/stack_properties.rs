//! Property-based integration tests on the RXL session guarantees.

use proptest::prelude::*;

use rxl::core::{CxlStack, ReceiveError, RxlStack};
use rxl::flit::{Flit256, FlitHeader, MemOp, Message};

fn flit_from_payload(seed: &[u8], ack: u16) -> Flit256 {
    let mut flit = Flit256::new(FlitHeader::ack(ack));
    let mut payload = [0u8; 240];
    for (i, b) in payload.iter_mut().enumerate() {
        *b = seed[i % seed.len()];
    }
    flit.payload = payload;
    flit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Delivering the sender's flits in order always succeeds, regardless of
    /// payload contents or piggybacked ACK values.
    #[test]
    fn rxl_in_order_delivery_always_succeeds(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..32), 1..20),
        acks in proptest::collection::vec(0u16..1024, 1..20),
    ) {
        let mut tx = RxlStack::new();
        let mut rx = RxlStack::new();
        for (i, p) in payloads.iter().enumerate() {
            let ack = acks[i % acks.len()];
            let flit = flit_from_payload(p, ack);
            let wire = tx.send(&flit);
            let received = rx.receive(&wire);
            prop_assert!(received.is_ok());
            prop_assert_eq!(received.unwrap(), flit);
        }
        prop_assert_eq!(rx.rejected(), 0);
    }

    /// Dropping any single flit from a stream makes the very next flit fail
    /// verification under RXL — no matter where the drop happens.
    #[test]
    fn rxl_any_single_drop_is_detected_on_the_next_flit(
        n_flits in 2usize..20,
        drop_index in 0usize..19,
        seed in any::<u8>(),
    ) {
        let drop_index = drop_index % (n_flits - 1); // never drop the last flit
        let mut tx = RxlStack::new();
        let mut rx = RxlStack::new();
        let mut outcome_after_drop = None;
        for i in 0..n_flits {
            let flit = flit_from_payload(&[seed, i as u8], 0);
            let wire = tx.send(&flit);
            if i == drop_index {
                continue; // silently dropped
            }
            let result = rx.receive(&wire);
            if i < drop_index {
                prop_assert!(result.is_ok());
            } else if outcome_after_drop.is_none() {
                outcome_after_drop = Some(result);
            }
        }
        prop_assert_eq!(
            outcome_after_drop.unwrap(),
            Err(ReceiveError::SequenceOrDataMismatch)
        );
    }

    /// Under baseline CXL the same drop goes unnoticed whenever the following
    /// flit piggybacks an ACK (and is therefore accepted).
    #[test]
    fn cxl_drop_followed_by_ack_flit_is_never_detected(
        tag in 0u16..100,
        ack in 0u16..1024,
    ) {
        let mut tx = CxlStack::new();
        let mut rx = CxlStack::new();
        let mut first = Flit256::new(FlitHeader::with_seq(0));
        first.pack_messages(&[Message::request(MemOp::RdCurr, 0, 0, tag)]).unwrap();
        let w0 = tx.send(&first);
        prop_assert!(rx.receive(&w0).is_ok());

        // Flit 1 is dropped.
        let dropped = Flit256::new(FlitHeader::with_seq(0));
        let _w1 = tx.send(&dropped);

        // Flit 2 piggybacks an ACK: baseline CXL accepts it blindly.
        let mut third = Flit256::new(FlitHeader::ack(ack));
        third.pack_messages(&[Message::request(MemOp::RdCurr, 64, 0, tag.wrapping_add(1))]).unwrap();
        let w2 = tx.send(&third);
        prop_assert!(rx.receive(&w2).is_ok());
        prop_assert_eq!(rx.unchecked_accepts(), 1);
    }

    /// Single-bit corruption anywhere in the wire image never produces an
    /// accepted-but-wrong flit under RXL: it is either repaired bit-exactly
    /// by the FEC or rejected.
    #[test]
    fn rxl_single_bit_corruption_never_silently_corrupts(
        byte in 0usize..256,
        bit in 0u8..8,
        seed in any::<u8>(),
    ) {
        let mut tx = RxlStack::new();
        let mut rx = RxlStack::new();
        let flit = flit_from_payload(&[seed, 0x5A], 3);
        let mut wire = tx.send(&flit);
        wire[byte] ^= 1 << bit;
        if let Ok(received) = rx.receive(&wire) { prop_assert_eq!(received, flit) }
    }
}
