//! E01 — structural integration test: the 256-byte flit layout of Fig. 3,
//! built from the real codecs across crates.

use rxl::crc::{catalog::FLIT_CRC64, Crc64, IsnCrc64};
use rxl::fec::InterleavedFec;
use rxl::flit::{CxlFlitCodec, Flit256, FlitHeader, MemOp, Message, RxlFlitCodec, WIRE_FLIT_LEN};

fn sample_flit() -> Flit256 {
    let mut flit = Flit256::new(FlitHeader::with_seq(9));
    flit.pack_messages(&[
        Message::request(MemOp::RdCurr, 0x40, 1, 1),
        Message::request(MemOp::RdOwn, 0x80, 2, 2),
    ])
    .unwrap();
    flit
}

#[test]
fn wire_flit_is_exactly_256_bytes_with_the_fig3_layout() {
    assert_eq!(WIRE_FLIT_LEN, 256);
    let codec = CxlFlitCodec::new();
    let flit = sample_flit();
    let wire = codec.encode(&flit);

    // Bytes 0..2: header.
    assert_eq!(&wire[..2], &flit.header.to_bytes());
    // Bytes 2..242: payload.
    assert_eq!(&wire[2..242], &flit.payload[..]);
    // Bytes 242..250: the 64-bit link CRC over header ‖ payload.
    let expected_crc = Crc64::flit().checksum(&wire[..242]);
    assert_eq!(&wire[242..250], &expected_crc.to_le_bytes());
    // Bytes 250..256: FEC parity — re-encoding the protected block must
    // reproduce them exactly.
    let fec = InterleavedFec::cxl_flit();
    let reencoded = fec.encode(&wire[..250]);
    assert_eq!(&wire[250..], &reencoded[250..]);
}

#[test]
fn rxl_wire_flit_shares_the_layout_but_binds_the_crc_to_the_sequence() {
    let codec = RxlFlitCodec::new();
    let flit = sample_flit();
    let wire = codec.encode(&flit, 77);

    assert_eq!(&wire[..2], &flit.header.to_bytes());
    assert_eq!(&wire[2..242], &flit.payload[..]);
    let stored_crc = u64::from_le_bytes(wire[242..250].try_into().unwrap());
    let isn = IsnCrc64::new(FLIT_CRC64);
    assert_eq!(stored_crc, isn.encode(&wire[..2], &flit.payload, 77));
    assert_ne!(stored_crc, isn.encode_explicit(&wire[..2], &flit.payload));
}

#[test]
fn fec_geometry_matches_the_paper_83_83_84_plus_2() {
    let fec = InterleavedFec::cxl_flit();
    let mut lens = fec.way_data_lens();
    lens.sort_unstable();
    assert_eq!(lens, vec![83, 83, 84]);
    assert_eq!(fec.parity_len(), 6);
    assert_eq!(fec.encoded_len(), 256);
}

#[test]
fn flit_redundancy_is_5_5_percent_of_the_flit() {
    // 14 bytes of CRC + FEC per 256-byte flit (Section 4.1).
    let redundancy = 8 + 6;
    let fraction = redundancy as f64 / 256.0;
    assert!((fraction - 0.0546875).abs() < 1e-9);
}
