//! Integration tests tying the analytic models (rxl-analysis) to measurements
//! taken on the real codecs and the simulator.

use rxl::analysis::fec_model::FecDetectionModel;
use rxl::analysis::{BandwidthModel, ReliabilityModel};
use rxl::fec::stats::burst_experiment;
use rxl::fec::InterleavedFec;
use rxl::link::ChannelErrorModel;

#[test]
fn paper_headline_numbers_from_the_analytic_models() {
    let rel = ReliabilityModel::cxl3_x16();
    let close = |a: f64, b: f64| ((a - b) / b).abs() < 0.05;
    assert!(close(rel.fer(), 2.0e-3));
    assert!(close(rel.fit_cxl_direct(), 2.9e-3));
    assert!(close(rel.fit_cxl_single_switch(), 5.4e15));
    assert!(close(rel.fit_rxl_single_switch(), 2.9e-3));

    let bw = BandwidthModel::cxl3_x16();
    assert!(close(bw.loss_cxl_direct(), 0.0015));
    assert!(close(bw.loss_cxl_switched_piggyback(), 0.0030));
    assert!(close(bw.loss_rxl_switched(), 0.0030));
}

#[test]
fn fec_detection_model_matches_the_real_decoder() {
    let model = FecDetectionModel::cxl_flit();
    let fec = InterleavedFec::cxl_flit();
    for burst in [4u32, 5, 6] {
        let measured = burst_experiment(&fec, burst as usize, 1500, 9_000 + burst as u64);
        let predicted = model.detection_fraction(burst);
        let observed = measured.detection_given_uncorrectable();
        assert!(
            (observed - predicted).abs() < 0.06,
            "burst {burst}: predicted {predicted:.3}, observed {observed:.3}"
        );
    }
}

#[test]
fn channel_model_reproduces_eqn_1_at_the_paper_operating_point() {
    // FER = 1 − (1 − BER)^2048: check the channel model's closed form and a
    // direct Monte-Carlo estimate at an accelerated BER where it is cheap.
    let paper = ChannelErrorModel::random(1e-6).unit_error_probability(2048);
    assert!((paper - 2.046e-3).abs() < 5e-5);

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let accelerated = ChannelErrorModel::random(1e-4);
    let mut rng = StdRng::seed_from_u64(5);
    let mut erroneous = 0u32;
    let trials = 4000;
    for _ in 0..trials {
        let mut flit = vec![0u8; 256];
        if accelerated.apply(&mut flit, &mut rng) > 0 {
            erroneous += 1;
        }
    }
    let measured = erroneous as f64 / trials as f64;
    let predicted = accelerated.unit_error_probability(2048);
    assert!(
        (measured - predicted).abs() < 0.03,
        "measured {measured:.4}, predicted {predicted:.4}"
    );
}

#[test]
fn fig8_shape_cxl_degrades_with_depth_rxl_does_not() {
    let rel = ReliabilityModel::cxl3_x16();
    let cxl: Vec<f64> = (0..=4).map(|l| rel.fit_cxl_levels(l)).collect();
    let rxl: Vec<f64> = (0..=4).map(|l| rel.fit_rxl_levels(l)).collect();
    // CXL: monotone increase, with a catastrophic jump from level 0 to 1.
    assert!(cxl[1] / cxl[0] > 1e17);
    assert!(cxl.windows(2).all(|w| w[1] > w[0]));
    // RXL: flat to within a factor of 1.001 across the whole sweep.
    assert!(rxl[4] / rxl[0] < 1.001);
}
