//! Golden-digest regression of the fabric Monte-Carlo aggregates.
//!
//! The hot-path overhaul (const CRC engines, slice-by-8 update, the
//! zero-allocation flit pipeline, and active-port slot stepping) and the
//! virtual-channel credit contract are both required to leave this
//! `vc_count = 1` configuration *bit-identical*: same SplitMix64 per-trial
//! seeding, same RNG draw order, same CRC values, same aggregate counts.
//! The pins below are captured under the **event-jump** RNG contract (see
//! the `FabricSim` type docs): per-link skip-ahead cursors sample the slot
//! of the next error event geometrically instead of one Bernoulli draw per
//! traversal, so the draw *sequence* differs from the pre-event-jump engine
//! by design, while per-link error statistics are pinned separately by
//! `tests/skip_ahead_equivalence.rs`. Any drift here means a change altered
//! simulation behaviour under the current contract, not just speed. See the
//! comment on the golden constants for the digest re-pin history.

use rxl::crc::Crc64;
use rxl::fabric::{
    FabricConfig, FabricMonteCarlo, FabricMonteCarloReport, FabricTopology, FabricWorkload,
};
use rxl::link::{ChannelErrorModel, ProtocolVariant};

/// Digest of every aggregate field of a Monte-Carlo report: the flit CRC-64
/// over the report's full `Debug` rendering (which covers `FailureCounts`,
/// `LinkStats`, `SwitchStats`, the event counters, and the per-trial event
/// rates — f64 `Debug` output is exact, so this pins bits, not approximations).
fn digest(report: &FabricMonteCarloReport) -> u64 {
    Crc64::flit().checksum(format!("{report:?}").as_bytes())
}

fn run(variant: ProtocolVariant) -> FabricMonteCarloReport {
    let topology = FabricTopology::ring(4, 1, 1);
    let config = FabricConfig::new(variant)
        .with_channel(ChannelErrorModel::random(2e-4))
        .with_seed(0xD16E57);
    let workload = FabricWorkload::symmetric(topology.session_count(), 600, 8, 7);
    FabricMonteCarlo::new(topology, config, 5).run(&workload)
}

#[test]
fn cxl_piggyback_aggregates_match_pre_overhaul_engine() {
    let report = run(ProtocolVariant::CxlPiggyback);
    // Spot-checks first: these fail with readable numbers before the digest
    // collapses everything into one opaque value.
    assert_eq!(
        (
            report.trials,
            report.links.flits_sent,
            report.switches.flits_in,
            report.undetected_drop_events,
            report.payload_drops,
            report.failures.clean_deliveries,
        ),
        GOLDEN_CXL_SPOT,
        "CXL spot-check fields drifted from the pre-overhaul engine"
    );
    assert_eq!(
        digest(&report),
        GOLDEN_CXL_DIGEST,
        "full CXL aggregate digest drifted: {report:#?}"
    );
}

#[test]
fn rxl_aggregates_match_pre_overhaul_engine() {
    let report = run(ProtocolVariant::Rxl);
    assert!(report.failures.is_clean(), "{:?}", report.failures);
    assert_eq!(report.undetected_drop_events, 0);
    assert_eq!(
        (
            report.trials,
            report.links.flits_sent,
            report.switches.flits_in,
            report.undetected_drop_events,
            report.payload_drops,
            report.failures.clean_deliveries,
        ),
        GOLDEN_RXL_SPOT,
        "RXL spot-check fields drifted from the pre-overhaul engine"
    );
    assert_eq!(
        digest(&report),
        GOLDEN_RXL_DIGEST,
        "full RXL aggregate digest drifted: {report:#?}"
    );
}

// Pin history:
//
// * Spot tuples originally captured on the pre-overhaul engine (commit
//   a396d2f) and unchanged through the hot-path overhaul, the probe layer
//   and the virtual-channel credit contract — each of those changes was
//   required to be bit-identical for this `vc_count = 1` configuration.
// * Re-pinned (spot tuples AND digests) for the geometric skip-ahead
//   channel contract: the engine now samples the slot of each link's next
//   error event instead of drawing per traversal, which deliberately
//   changes the RNG draw *sequence* at a noisy-channel configuration like
//   this one (2e-4 BER). Ideal-channel configurations were draw-free under
//   both contracts and stayed bit-identical; statistical equivalence of
//   the error process across the old and new shapes is pinned by
//   `tests/skip_ahead_equivalence.rs`. (The earlier digest-only re-pin for
//   the `post_delivery_wedge_trials` report field predates this.)
//
// Regenerate ONLY if the simulation semantics are intentionally changed,
// with `cargo test --test fabric_golden_digest -- --ignored --nocapture`
// (the `print_golden` helper below), and never re-pin the spot tuples
// without a deliberate, documented semantics change.
const GOLDEN_CXL_SPOT: (u64, u64, u64, u64, u64, u64) = (5, 1600, 5882, 1, 70, 14370);
const GOLDEN_CXL_DIGEST: u64 = 0xDD8A_4F5A_380F_7212;
const GOLDEN_RXL_SPOT: (u64, u64, u64, u64, u64, u64) = (5, 1600, 6402, 0, 51, 24000);
const GOLDEN_RXL_DIGEST: u64 = 0xBBC7_93B8_9670_C13C;

/// Prints the current golden values (run with `--nocapture --ignored`).
#[test]
#[ignore = "capture helper, not a regression test"]
fn print_golden() {
    for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
        let report = run(variant);
        println!(
            "{variant:?}: SPOT = {:?}, DIGEST = 0x{:016X}",
            (
                report.trials,
                report.links.flits_sent,
                report.switches.flits_in,
                report.undetected_drop_events,
                report.payload_drops,
                report.failures.clean_deliveries,
            ),
            digest(&report)
        );
    }
}
