//! Acceptance tests for the `rxl-chaos` fault-injection subsystem
//! (ISSUE 4): a BER storm on one leaf–spine uplink must show up as
//! *localized-in-time* failure counts for baseline CXL while RXL rides it
//! out clean; a spine failure must reroute surviving sessions; and both
//! scenarios must be bit-identical across Monte-Carlo worker-thread counts.

use rxl::chaos::{ChaosMonteCarlo, ChaosMonteCarloReport, Scenario};
use rxl::fabric::{FabricConfig, FabricTopology, FabricWorkload};
use rxl::link::{ChannelErrorModel, ProtocolVariant};

/// The storm scenario of the acceptance criteria: one leaf–spine uplink of
/// a single-spine pod takes a ×60 BER storm (1e-6 → 6e-5) over slots
/// [800, 2000) while four sessions stream through it. Every input is
/// seeded, so the asserted counts are exact, not statistical.
fn storm_experiment(variant: ProtocolVariant) -> ChaosMonteCarloReport {
    let topology = FabricTopology::leaf_spine(2, 1, 2);
    let uplink = topology.trunk_between(0, 2).expect("leaf 0 ⇄ spine trunk");
    let scenario = Scenario::named("uplink storm").ber_storm(800, 1_200, vec![uplink], 60.0);
    let config = FabricConfig {
        max_slots: 30_000,
        ..FabricConfig::new(variant)
    }
    .with_channel(ChannelErrorModel::random(1e-6))
    .with_seed(0xC4A0_5EED);
    let workload = FabricWorkload::symmetric(topology.session_count(), 6_000, 8, 0xC4A05);
    ChaosMonteCarlo::new(topology, config, scenario, 6).run(&workload)
}

#[test]
fn ber_storm_failures_concentrate_in_the_storm_epoch_for_cxl() {
    let report = storm_experiment(ProtocolVariant::CxlPiggyback);
    assert_eq!(report.epochs.len(), 3, "before / during / after");
    let fails: Vec<u64> = report
        .epochs
        .iter()
        .map(|e| e.failures.total_failures())
        .collect();
    let drops: Vec<u64> = report.epochs.iter().map(|e| e.payload_drops).collect();
    // The paper's operating point (BER 1e-6) is clean before the storm...
    assert_eq!(fails[0], 0, "pre-storm epoch must be clean: {fails:?}");
    assert_eq!(drops[0], 0);
    // ...the storm epoch carries strictly more failures than either
    // neighbour...
    assert!(
        fails[1] > fails[0] && fails[1] > fails[2],
        "storm epoch must dominate: {fails:?}"
    );
    // ...and the channel-induced silent drops localize entirely inside it.
    assert!(drops[1] > 0, "the storm must cause silent drops: {drops:?}");
    assert_eq!(drops[2], 0, "drops must stop with the storm: {drops:?}");
    // The damage is application-visible overall.
    assert!(report.failures.total_failures() > 0);
    assert!(report.availability_mean() < 1.0);
}

#[test]
fn rxl_rides_out_the_same_storm_clean() {
    let report = storm_experiment(ProtocolVariant::Rxl);
    assert!(report.failures.is_clean(), "{:?}", report.failures);
    assert_eq!(report.undetected_drop_events, 0);
    assert_eq!(report.fail_order_trials, 0);
    assert_eq!(report.availability_mean(), 1.0);
    assert_eq!(report.drained_trials, report.trials);
    // Same storm, same drops at the link level — the difference is purely
    // protocol recovery.
    assert!(
        report.epochs[1].payload_drops > 0,
        "RXL must have faced storm drops too"
    );
}

/// A spine dies mid-traffic; ECMP routed half the flows through it. The
/// engine recomputes routing, in-flight traffic reroutes over the surviving
/// spine, and — for RXL — go-back-N retries the purged flits so the audit
/// finishes clean.
fn failover_experiment(variant: ProtocolVariant) -> ChaosMonteCarloReport {
    let topology = FabricTopology::leaf_spine(2, 2, 2);
    let scenario = Scenario::named("spine failover").switch_fail(400, 2);
    let config = FabricConfig {
        max_slots: 30_000,
        ..FabricConfig::new(variant)
    }
    .with_channel(ChannelErrorModel::ideal())
    .with_seed(0xFA11_5EED);
    let workload = FabricWorkload::symmetric(topology.session_count(), 6_000, 8, 0xFA11);
    ChaosMonteCarlo::new(topology, config, scenario, 3).run(&workload)
}

#[test]
fn switch_fail_reroutes_surviving_sessions() {
    for variant in [ProtocolVariant::Rxl, ProtocolVariant::CxlPiggyback] {
        let report = failover_experiment(variant);
        assert_eq!(report.epochs.len(), 2, "before / after the failure");
        // The dead spine held flits — they are gone.
        assert!(report.blackholed_flits > 0, "{variant:?}");
        // Nonzero delivered traffic after the failure: the fabric rerouted.
        assert!(
            report.epochs[1].failures.clean_deliveries > 0,
            "{variant:?} must keep delivering after the spine dies"
        );
        if variant == ProtocolVariant::Rxl {
            // RXL retries the purged flits like any silent drop: clean.
            assert!(report.failures.is_clean(), "{:?}", report.failures);
            assert_eq!(report.drained_trials, report.trials);
            assert_eq!(report.availability_mean(), 1.0);
        }
    }
}

/// The acceptance criteria's reproducibility clause: both scenarios produce
/// bit-identical aggregate reports for 1 and N worker threads.
#[test]
fn chaos_scenarios_are_bit_identical_across_thread_counts() {
    let topology = FabricTopology::leaf_spine(2, 2, 1);
    let uplink = topology.trunk_between(0, 2).expect("uplink");
    let scenarios = [
        Scenario::named("storm").ber_storm(100, 300, vec![uplink], 50.0),
        Scenario::named("failover").switch_fail(150, 2),
    ];
    for scenario in scenarios {
        let config = FabricConfig {
            max_slots: 20_000,
            ..FabricConfig::new(ProtocolVariant::CxlPiggyback)
        }
        .with_channel(ChannelErrorModel::random(1e-5))
        .with_seed(0xBEEF);
        let mc = ChaosMonteCarlo::new(topology.clone(), config, scenario, 4);
        let workload = FabricWorkload::symmetric(topology.session_count(), 1_500, 8, 2);

        let run_with_threads = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("shim pool build is infallible");
            pool.install(|| mc.run(&workload))
        };
        let reference = run_with_threads(1);
        for threads in [2, 4] {
            let report = run_with_threads(threads);
            assert_eq!(
                format!("{report:?}"),
                format!("{reference:?}"),
                "{} with {threads} threads",
                mc.scenario().name
            );
        }
    }
}
