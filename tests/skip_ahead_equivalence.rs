//! Statistical-equivalence pins for the geometric skip-ahead channel
//! sampler.
//!
//! The event-jump contract (see the `FabricSim` engine docs and the
//! `Channel` trait) deliberately changes the RNG draw *sequence* relative to
//! per-traversal Bernoulli sampling, so bit-identity against the old engine
//! is not the invariant — distributional identity is. This suite pins it:
//!
//! * per-link error-traversal counts and flipped-bit totals under skip-ahead
//!   match the per-flit Bernoulli reference across BERs 1e-7..1e-3 (mean ±
//!   a 5σ binomial/Poisson envelope, deterministic seeds),
//! * interleaving several links' cursors over one shared RNG stream — the
//!   engine's composition — preserves every link's marginal,
//! * Gilbert–Elliott state-dwell occupancy inferred from the event rate
//!   matches the chain's stationary distribution, and the long-run flipped
//!   bit rate converges to `stationary_ber()`, re-pinning that helper's
//!   meaning under the dwell-jump sampler.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rxl::chaos::GilbertElliott;
use rxl::link::{ChannelErrorModel, EventCursor};

const FLIT_BYTES: usize = 256;
const FLIT_BITS: u64 = (FLIT_BYTES * 8) as u64;

/// 5σ envelope (± an absolute floor of 1) around a binomial mean.
fn envelope(n: f64, p: f64) -> f64 {
    5.0 * (n * p * (1.0 - p)).sqrt() + 1.0
}

fn assert_within(label: &str, observed: u64, expected: f64, tol: f64) {
    assert!(
        (observed as f64 - expected).abs() <= tol,
        "{label}: observed {observed}, expected {expected:.1} ± {tol:.1}"
    );
}

#[test]
fn skip_ahead_error_counts_match_per_flit_bernoulli_across_bers() {
    for (ber, trials) in [(1e-7, 400_000u64), (1e-5, 200_000), (1e-3, 100_000)] {
        let ch = ChannelErrorModel::random(ber);
        let p_unit = ch.unit_error_probability(FLIT_BITS as usize);

        // Skip-ahead: cursor-driven event jumps.
        let mut skip_ch = ch;
        let mut cursor = EventCursor::new();
        let mut rng = StdRng::seed_from_u64(0xA11CE ^ ber.to_bits());
        let (mut skip_events, mut skip_flips) = (0u64, 0u64);
        for slot in 0..trials {
            let mut data = [0u8; FLIT_BYTES];
            let flips = cursor.advance(&mut skip_ch, &mut data, slot as f64, &mut rng);
            skip_events += u64::from(flips > 0);
            skip_flips += flips as u64;
        }

        // Per-flit Bernoulli reference: one legacy `apply` per traversal.
        let mut ref_rng = StdRng::seed_from_u64(0xBE77E4 ^ ber.to_bits());
        let (mut ref_events, mut ref_flips) = (0u64, 0u64);
        for _ in 0..trials {
            let mut data = [0u8; FLIT_BYTES];
            let flips = ch.apply(&mut data, &mut ref_rng);
            ref_events += u64::from(flips > 0);
            ref_flips += flips as u64;
        }

        // Both samplers sit inside the same envelope around the analytic
        // per-traversal error probability...
        let expected_events = trials as f64 * p_unit;
        let tol_events = envelope(trials as f64, p_unit);
        assert_within(
            &format!("skip-ahead events at BER {ber}"),
            skip_events,
            expected_events,
            tol_events,
        );
        assert_within(
            &format!("reference events at BER {ber}"),
            ref_events,
            expected_events,
            tol_events,
        );
        // ...and around the analytic flipped-bit rate (≈ Poisson at these
        // BERs, so 5·√mean bounds it).
        let expected_flips = trials as f64 * FLIT_BITS as f64 * ber;
        let tol_flips = 5.0 * expected_flips.sqrt() + 1.0;
        assert_within(
            &format!("skip-ahead flips at BER {ber}"),
            skip_flips,
            expected_flips,
            tol_flips,
        );
        assert_within(
            &format!("reference flips at BER {ber}"),
            ref_flips,
            expected_flips,
            tol_flips,
        );
    }
}

#[test]
fn interleaved_per_link_cursors_keep_their_marginals() {
    // Three links of different BERs share one RNG stream, advanced in a
    // fixed round-robin — the fabric engine's composition of per-link
    // cursors over the single trial RNG. Each link's error count must
    // still match its own Bernoulli marginal.
    let bers = [1e-5, 1e-4, 1e-3];
    let mut chans: Vec<ChannelErrorModel> =
        bers.iter().map(|&b| ChannelErrorModel::random(b)).collect();
    let mut cursors = vec![EventCursor::new(); bers.len()];
    let mut rng = StdRng::seed_from_u64(0x71E5C0);
    let mut events = [0u64; 3];
    let trials = 120_000u64;
    for slot in 0..trials {
        for (i, (ch, cursor)) in chans.iter_mut().zip(cursors.iter_mut()).enumerate() {
            let mut data = [0u8; FLIT_BYTES];
            if cursor.advance(ch, &mut data, slot as f64, &mut rng) > 0 {
                events[i] += 1;
            }
        }
    }
    for (i, &ber) in bers.iter().enumerate() {
        let p_unit = chans[i].unit_error_probability(FLIT_BITS as usize);
        assert_within(
            &format!("link {i} (BER {ber}) events"),
            events[i],
            trials as f64 * p_unit,
            envelope(trials as f64, p_unit),
        );
    }
}

#[test]
fn ge_dwell_occupancy_matches_the_stationary_chain() {
    // With an ideal good state, every error event is a bad-state traversal,
    // so the event rate divided by the bad state's per-traversal error
    // probability estimates the bad-state occupancy — pinning the geometric
    // dwell-length sampler's means against the chain's stationary
    // distribution.
    let ge_template = GilbertElliott::new(
        ChannelErrorModel::ideal(),
        ChannelErrorModel::random(5e-4),
        0.004,
        0.036,
    );
    let pi_bad = ge_template.stationary_bad_fraction();
    let p_bad = ge_template.bad.unit_error_probability(FLIT_BITS as usize);

    let mut ge = ge_template;
    let mut cursor = EventCursor::new();
    let mut rng = StdRng::seed_from_u64(0xD3E11);
    let trials = 400_000u64;
    let mut events = 0u64;
    for slot in 0..trials {
        let mut data = [0u8; FLIT_BYTES];
        if cursor.advance(&mut ge, &mut data, slot as f64, &mut rng) > 0 {
            events += 1;
        }
    }
    let occupancy_hat = events as f64 / trials as f64 / p_bad;
    assert!(
        (occupancy_hat - pi_bad).abs() < 0.15 * pi_bad,
        "inferred bad-state occupancy {occupancy_hat:.4} vs stationary {pi_bad:.4}"
    );
}

#[test]
fn ge_stationary_ber_convergence_is_repinned_under_skip_ahead() {
    // The long-run flipped-bit rate under the dwell-jump sampler converges
    // to `stationary_ber()` — the same meaning the helper had under
    // per-traversal stepping.
    let ge_template = GilbertElliott::new(
        ChannelErrorModel::random(1e-5),
        ChannelErrorModel::random(1e-3),
        0.002,
        0.018,
    );
    let expected = ge_template.stationary_ber();

    let mut ge = ge_template;
    let mut cursor = EventCursor::new();
    let mut rng = StdRng::seed_from_u64(0x5AB1E);
    let trials = 600_000u64;
    let mut flips = 0u64;
    for slot in 0..trials {
        let mut data = [0u8; FLIT_BYTES];
        flips += cursor.advance(&mut ge, &mut data, slot as f64, &mut rng) as u64;
    }
    let measured = flips as f64 / (trials as f64 * FLIT_BITS as f64);
    assert!(
        (measured - expected).abs() < 0.12 * expected,
        "measured long-run BER {measured:.3e} vs stationary {expected:.3e}"
    );
}
