//! Telemetry-neutrality regression: probes observe, they never perturb.
//!
//! The probe seam's contract (see `rxl_fabric::probe`) has two halves, and
//! each gets pinned here from the outside of the stack:
//!
//! * **Disabled costs nothing and changes nothing** — the golden-digest
//!   suite (`tests/fabric_golden_digest.rs`) already pins the default
//!   `NullProbe` path bit-identical to the pre-probe engine.
//! * **Enabled changes nothing either** — a probe receives lifecycle events
//!   but never draws from the trial RNG and never feeds state back, so the
//!   simulated trial with a probe attached is bit-identical to the trial
//!   without one, and everything a probe accumulates merges exactly across
//!   any rayon worker-thread count.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rxl::chaos::{ChaosMonteCarlo, Scenario};
use rxl::fabric::{
    CountingProbe, FabricConfig, FabricSim, FabricTopology, FabricWorkload, RoutingTable,
};
use rxl::link::{ChannelErrorModel, ProtocolVariant};
use rxl::load::{
    ArrivalProcess, FanoutShape, LatencyHistogram, LoadSweep, LoadSweepConfig, RequestGenerator,
    TrafficMatrix,
};
use rxl::telemetry::{
    MetricsProbe, MetricsRegistry, RequestProbe, RequestSweep, RequestSweepConfig, SloProbe,
    WindowedTelemetry,
};

/// A noisy single-trial configuration: enough channel errors to exercise
/// retransmission, NACK and verdict paths, so any probe-induced RNG drift
/// would cascade into visibly different aggregates.
fn noisy_config(variant: ProtocolVariant) -> FabricConfig {
    FabricConfig::new(variant)
        .with_channel(ChannelErrorModel::random(2e-4))
        .with_seed(0xD16E57)
}

#[test]
fn enabled_probe_observes_a_bit_identical_trial() {
    let topology = FabricTopology::ring(4, 1, 1);
    let routing = RoutingTable::new(&topology);
    let workload = FabricWorkload::symmetric(topology.session_count(), 600, 8, 7);

    for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
        let baseline = FabricSim::new(&topology, &routing, noisy_config(variant)).run(&workload);

        let mut sim = FabricSim::with_probe(
            &topology,
            &routing,
            noisy_config(variant),
            CountingProbe::default(),
        );
        sim.begin(&workload);
        let _ = sim.step(u64::MAX);
        let (probed, counts) = sim.finish_with_probe();

        // The full `Debug` rendering covers every aggregate — counters,
        // stats, exact f64 rates — so equality here means the probed trial
        // was the same trial, bit for bit.
        assert_eq!(
            format!("{baseline:?}"),
            format!("{probed:?}"),
            "{variant:?}: attaching an enabled probe changed the simulation"
        );
        // And the probe actually watched it happen.
        assert_eq!(counts.injects, 2 * 4 * 600, "{variant:?}");
        assert!(
            counts.delivers >= probed.total_failures().clean_deliveries,
            "{variant:?}: every clean delivery passes through the probe (saw {}, clean {})",
            counts.delivers,
            probed.total_failures().clean_deliveries,
        );
        assert!(counts.channel_errors > 0, "{variant:?}: noisy channel");
    }
}

fn storm_experiment(variant: ProtocolVariant) -> (ChaosMonteCarlo, FabricWorkload) {
    let topology = FabricTopology::leaf_spine(2, 1, 2);
    let uplink = topology.trunk_between(0, 2).expect("leaf 0 uplink");
    let scenario = Scenario::named("neutrality storm").ber_storm(300, 400, vec![uplink], 50.0);
    let workload = FabricWorkload::symmetric(topology.session_count(), 900, 8, 11);
    let config = noisy_config(variant).with_seed(0x510);
    (
        ChaosMonteCarlo::new(topology, config, scenario, 4),
        workload,
    )
}

#[test]
fn slo_probe_leaves_chaos_aggregates_unchanged() {
    for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
        let (mc, workload) = storm_experiment(variant);
        let unprobed = mc.run(&workload);
        let (probed, probes) = mc.run_probed(&workload, |_| SloProbe::new(200));
        assert_eq!(
            format!("{unprobed:?}"),
            format!("{probed:?}"),
            "{variant:?}: SloProbe perturbed the Monte-Carlo aggregates"
        );
        assert_eq!(probes.len(), 4);
        assert!(probes.iter().all(|p| !p.windows().is_empty()));
    }
}

/// Runs the probed storm Monte-Carlo on a dedicated `threads`-wide rayon
/// pool and returns the report plus the trial-order merge of the per-trial
/// windows.
fn probed_on_pool(variant: ProtocolVariant, threads: usize) -> (String, String) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build rayon pool");
    pool.install(|| {
        let (mc, workload) = storm_experiment(variant);
        let (report, probes) = mc.run_probed(&workload, |_| SloProbe::new(200));
        let mut merged = WindowedTelemetry::new(200);
        for probe in &probes {
            merged.merge(probe.windows());
        }
        (format!("{report:?}"), format!("{merged:?}"))
    })
}

#[test]
fn probed_aggregates_are_thread_count_independent() {
    for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
        let (report_1, windows_1) = probed_on_pool(variant, 1);
        let (report_4, windows_4) = probed_on_pool(variant, 4);
        assert_eq!(
            report_1, report_4,
            "{variant:?}: FailureCounts/epoch aggregates drifted with thread count"
        );
        assert_eq!(
            windows_1, windows_4,
            "{variant:?}: merged telemetry windows drifted with thread count"
        );
    }
}

#[test]
fn metrics_probe_observes_a_bit_identical_trial() {
    let topology = FabricTopology::ring(4, 1, 1);
    let routing = RoutingTable::new(&topology);
    let workload = FabricWorkload::symmetric(topology.session_count(), 600, 8, 7);

    for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
        let baseline = FabricSim::new(&topology, &routing, noisy_config(variant)).run(&workload);

        let config = noisy_config(variant);
        let probe = MetricsProbe::for_topology(&topology, config.vc_count);
        let mut sim = FabricSim::with_probe(&topology, &routing, config, probe);
        sim.begin(&workload);
        let _ = sim.step(u64::MAX);
        let (probed, probe) = sim.finish_with_probe();

        assert_eq!(
            format!("{baseline:?}"),
            format!("{probed:?}"),
            "{variant:?}: attaching a MetricsProbe changed the simulation"
        );
        let reg = probe.registry();
        let traversals: u64 = (0..reg.link_count()).map(|l| reg.traversals(l)).sum();
        assert!(traversals > 0, "{variant:?}: registry saw the trial");
        let forwarded: u64 = (0..reg.switch_count())
            .map(|s| reg.switch_forwarded(s))
            .sum();
        assert!(forwarded > 0, "{variant:?}: switches forwarded flits");
    }
}

/// The attributed incast sweep of the metrics layer, run on a dedicated
/// `threads`-wide rayon pool; returns the per-rung trial-order registry
/// merges.
fn metrics_sweep_on_pool(threads: usize) -> Vec<MetricsRegistry> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build rayon pool");
    pool.install(|| {
        let topology = FabricTopology::leaf_spine(2, 1, 2);
        let config = FabricConfig {
            queue_capacity: 8,
            ..noisy_config(ProtocolVariant::Rxl)
        };
        let vcc = config.vc_count;
        let sweep = LoadSweep::new(
            topology.clone(),
            config,
            LoadSweepConfig {
                loads: vec![0.3, 0.8],
                messages_per_session: 400,
                trials: 4,
                matrix: TrafficMatrix::Incast { leaf: 1 },
                arrival: ArrivalProcess::fixed(1.0),
                ..LoadSweepConfig::default()
            },
        );
        let (_, probes) = sweep.run_probed(|_| MetricsProbe::for_topology(&topology, vcc));
        probes
            .into_iter()
            .map(|trial_probes| {
                let mut merged: Option<MetricsRegistry> = None;
                for p in trial_probes {
                    match &mut merged {
                        None => merged = Some(p.into_registry()),
                        Some(m) => m.merge(p.registry()),
                    }
                }
                merged.expect("each rung ran trials")
            })
            .collect()
    })
}

#[test]
fn metrics_registries_are_thread_count_independent() {
    let single = metrics_sweep_on_pool(1);
    let wide = metrics_sweep_on_pool(4);
    assert_eq!(
        single, wide,
        "per-rung registry merges drifted with thread count"
    );
    assert!(single.iter().any(|r| (0..r.switch_count())
        .map(|s| r.switch_stalls(s))
        .sum::<u64>()
        > 0));
}

#[test]
fn probe_traversals_agree_with_engine_link_stats() {
    let topology = FabricTopology::leaf_spine(2, 1, 2);
    let routing = RoutingTable::new(&topology);
    let workload = FabricWorkload::symmetric(topology.session_count(), 400, 8, 3);

    for channel in [ChannelErrorModel::ideal(), ChannelErrorModel::random(2e-4)] {
        for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
            let config = FabricConfig::new(variant)
                .with_channel(channel)
                .with_seed(0xD16E57);
            let probe = MetricsProbe::for_topology(&topology, config.vc_count);
            let mut sim = FabricSim::with_probe(&topology, &routing, config, probe);
            sim.begin(&workload);
            let _ = sim.step(u64::MAX);
            let (report, probe) = sim.finish_with_probe();
            assert!(report.drained, "{variant:?}");

            let reg = probe.registry();
            let injected: u64 = (0..topology.endpoint_count())
                .map(|e| reg.inject_traversals(e))
                .sum();
            // Injection-direction traversals are the endpoints' non-idle
            // wire flits. `LinkStats` tallies payload, replay and
            // standalone-ACK flits individually; standalone NACK emissions
            // also occupy the wire but are folded into the NACK counter, so
            // the identity is exact on an ideal channel (no NACKs) and
            // NACK-bounded on a noisy one.
            let non_idle = report.links.total_wire_flits() - report.links.idle_flits_sent;
            assert!(
                injected >= non_idle && injected <= non_idle + report.links.nacks_sent,
                "{variant:?}: probe saw {injected} injected flits, engine wire counters \
                 bound [{non_idle}, {}]",
                non_idle + report.links.nacks_sent
            );
            if report.links.nacks_sent == 0 {
                assert_eq!(injected, non_idle, "{variant:?}: exact on an ideal channel");
            }
        }
    }
}

#[test]
fn request_probe_observes_a_bit_identical_open_system_trial() {
    let topology = FabricTopology::leaf_spine(2, 1, 2);
    let routing = RoutingTable::new(&topology);
    let generator = RequestGenerator {
        fanout: 4,
        requests: 600,
        shape: FanoutShape::Uniform,
        arrival: ArrivalProcess::poisson(1.0),
        cqids: 8,
    };

    for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
        let config = FabricConfig {
            max_slots: u64::MAX,
            ..noisy_config(variant)
        };
        let (workload, pacing, map) =
            generator.build(&topology, 0.2, config.seed, &mut StdRng::seed_from_u64(42));
        let horizon = map.last_arrival() + 400;

        // Baseline: the identical undrained open-system run, no probe.
        let mut sim = FabricSim::new(&topology, &routing, config);
        sim.begin_paced(&workload, &pacing);
        let _ = sim.run_to_horizon(horizon);
        let baseline = sim.finish();

        let probe = RequestProbe::new(&map, topology.session_count(), 200);
        let mut sim = FabricSim::with_probe(&topology, &routing, config, probe);
        sim.begin_paced(&workload, &pacing);
        let _ = sim.run_to_horizon(horizon);
        let (probed, probe) = sim.finish_with_probe();

        assert_eq!(
            format!("{baseline:?}"),
            format!("{probed:?}"),
            "{variant:?}: attaching a RequestProbe changed the open-system trial"
        );
        assert!(probe.completed() > 0, "{variant:?}: probe saw completions");
        assert_eq!(
            probe.started(),
            map.requests.len() as u64,
            "{variant:?}: every request's first shard passed the probe"
        );
    }
}

/// The open-system request sweep on a dedicated `threads`-wide rayon pool;
/// returns the full report and per-rung probe/registry renderings.
fn request_sweep_on_pool(variant: ProtocolVariant, threads: usize) -> (String, String) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build rayon pool");
    pool.install(|| {
        let topology = FabricTopology::leaf_spine(2, 1, 2);
        let config = FabricConfig {
            queue_capacity: 8,
            ..noisy_config(variant)
        };
        let sweep = RequestSweep::new(
            topology,
            config,
            RequestSweepConfig {
                loads: vec![0.1, 0.4],
                fanout: 2,
                shape: FanoutShape::Incast { leaf: 1 },
                trials: 4,
                measure_slots: 1_200,
                window_slots: 300,
                ..RequestSweepConfig::default()
            },
        );
        let (report, rungs) = sweep.run_detailed();
        let rungs: Vec<String> = rungs
            .iter()
            .map(|r| format!("{:?} {:?} {}", r.probe.windows(), r.registry, r.slots))
            .collect();
        (format!("{report:?}"), rungs.join("\n"))
    })
}

#[test]
fn request_telemetry_is_thread_count_independent() {
    for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
        let (report_1, rungs_1) = request_sweep_on_pool(variant, 1);
        let (report_4, rungs_4) = request_sweep_on_pool(variant, 4);
        assert_eq!(
            report_1, report_4,
            "{variant:?}: request sweep report drifted with thread count"
        );
        assert_eq!(
            rungs_1, rungs_4,
            "{variant:?}: merged request windows/registries drifted with thread count"
        );
    }
}

#[test]
fn slo_probe_histogram_agrees_with_engine_latency_samples() {
    let topology = FabricTopology::leaf_spine(2, 1, 2);
    let routing = RoutingTable::new(&topology);
    let workload = FabricWorkload::symmetric(topology.session_count(), 400, 8, 3);

    for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
        let mut sim = FabricSim::with_probe(
            &topology,
            &routing,
            noisy_config(variant),
            SloProbe::new(100),
        );
        sim.enable_latency_telemetry();
        sim.begin(&workload);
        let _ = sim.step(u64::MAX);
        let (report, probe) = sim.finish_with_probe();

        let samples = report.latency.expect("latency telemetry enabled");
        let mut engine_hist = LatencyHistogram::default();
        engine_hist.record_samples(&samples);

        let mut probe_hist = LatencyHistogram::default();
        for w in probe.windows().windows() {
            probe_hist.merge(&w.hist);
        }
        // Same population, bucket for bucket: the probe's delivery-window
        // histograms partition exactly the engine's own sample stream.
        assert_eq!(
            format!("{engine_hist:?}"),
            format!("{probe_hist:?}"),
            "{variant:?}: probe histogram disagrees with engine latency samples"
        );
        assert_eq!(probe_hist.count(), samples.len() as u64, "{variant:?}");
    }
}
