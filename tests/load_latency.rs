//! Acceptance tests for the `rxl-load` open-loop latency subsystem.
//!
//! Three contracts anchor the latency story:
//!
//! 1. **Monotone congestion** — on a leaf–spine pod with deterministic
//!    fixed-rate arrivals and an ideal channel, p99 latency is monotone
//!    non-decreasing in offered load, and a ladder that crosses the shared
//!    trunks' capacity reports a saturation knee.
//! 2. **Latency cost of reliability** — in the zero-BER ideal channel RXL
//!    paces exactly like baseline CXL (identical latency distributions: the
//!    ISN rides in the ECRC, costing no header bits and no slots), so RXL's
//!    mean latency can exceed baseline CXL's *only* through retry/replay;
//!    under a noisy channel that excess is measured against RXL's own
//!    ideal-channel baseline, and stays bounded by what baseline CXL's
//!    surviving messages already pay (detected-drop go-back-N plus the
//!    stale-NACK stall tail) while CXL additionally fails outright.
//! 3. **Sharded reproducibility** — the sweep's merged histograms (and the
//!    whole report) are bit-identical for 1-vs-N rayon worker threads, with
//!    randomised (Poisson) arrival schedules in play.
//!
//! The companion guarantee — that the greedy path is byte-identical with
//! pacing and telemetry disabled — is pinned by `tests/fabric_golden_digest.rs`
//! against digests captured before this subsystem existed.

use rxl::fabric::{FabricConfig, FabricTopology};
use rxl::link::{ChannelErrorModel, ProtocolVariant};
use rxl::load::{ArrivalProcess, LoadSweep, LoadSweepConfig, TrafficMatrix};

fn sweep(
    variant: ProtocolVariant,
    channel: ChannelErrorModel,
    loads: Vec<f64>,
    arrival: ArrivalProcess,
) -> LoadSweep {
    LoadSweep::new(
        FabricTopology::leaf_spine(2, 1, 2),
        FabricConfig::new(variant)
            .with_channel(channel)
            .with_seed(0x10AD),
        LoadSweepConfig {
            loads,
            messages_per_session: 450,
            trials: 2,
            matrix: TrafficMatrix::Uniform,
            arrival,
            ..LoadSweepConfig::default()
        },
    )
}

#[test]
fn p99_is_monotone_in_offered_load_with_a_detected_knee() {
    // 4 session-streams share each leaf–spine trunk direction, so capacity
    // sits near load 0.25; the ladder brackets it from both sides.
    let report = sweep(
        ProtocolVariant::Rxl,
        ChannelErrorModel::ideal(),
        vec![0.05, 0.10, 0.20, 0.40, 0.80],
        ArrivalProcess::fixed(1.0),
    )
    .run();

    for w in report.points.windows(2) {
        assert!(
            w[1].stats.p99 >= w[0].stats.p99,
            "p99 must be monotone non-decreasing in offered load: {} → {} at loads {} → {}",
            w[0].stats.p99,
            w[1].stats.p99,
            w[0].offered_load,
            w[1].offered_load
        );
    }
    let knee = report.knee.expect("the ladder crosses trunk saturation");
    let knee_load = report.points[knee].offered_load;
    assert!(
        (0.2..=0.8).contains(&knee_load),
        "knee at {knee_load} is outside the capacity crossing"
    );
    // Past the knee the tail has genuinely blown up.
    assert!(report.points.last().unwrap().stats.p99 >= 2 * report.points[0].stats.p99);
    // Ideal channel: every message delivered, every trial clean.
    for p in &report.points {
        assert!(p.failures.is_clean());
        assert_eq!(p.injected_messages, p.delivered_messages);
    }
}

#[test]
fn rxl_latency_matches_cxl_exactly_on_an_ideal_channel() {
    // The ISN rides in the transport ECRC: reliability costs RXL zero header
    // bits and zero slots, so with no errors to retry the two protocols'
    // latency distributions must be *identical*, not merely close.
    let loads = vec![0.10, 0.30];
    let cxl = sweep(
        ProtocolVariant::CxlPiggyback,
        ChannelErrorModel::ideal(),
        loads.clone(),
        ArrivalProcess::fixed(1.0),
    )
    .run();
    let rxl = sweep(
        ProtocolVariant::Rxl,
        ChannelErrorModel::ideal(),
        loads,
        ArrivalProcess::fixed(1.0),
    )
    .run();
    for (c, r) in cxl.points.iter().zip(&rxl.points) {
        assert_eq!(
            c.histogram, r.histogram,
            "ideal-channel latency distributions must be identical at load {}",
            c.offered_load
        );
    }
}

#[test]
fn noisy_channel_raises_rxl_latency_only_through_retry_replay() {
    let loads = vec![0.15];
    let arrival = ArrivalProcess::fixed(1.0);
    let ideal = sweep(
        ProtocolVariant::Rxl,
        ChannelErrorModel::ideal(),
        loads.clone(),
        arrival,
    )
    .run();
    // BER 4e-4 was unreachable before the post-delivery wedge
    // classification: at this noise level a trial's control-plane replay can
    // keep churning after the last payload delivers, and the stall guard
    // used to call that an undrained run. With every auditor reporting
    // `all_delivered`, such trials now finish as `drained` (flagged
    // `post_delivery_wedge`), so the latency contract can be pinned at
    // double the old operating point.
    let noisy = sweep(
        ProtocolVariant::Rxl,
        ChannelErrorModel::random(4e-4),
        loads.clone(),
        arrival,
    )
    .run();
    let cxl_noisy = sweep(
        ProtocolVariant::CxlPiggyback,
        ChannelErrorModel::random(4e-4),
        loads,
        arrival,
    )
    .run();

    let (ideal_p, noisy_p, cxl_p) = (&ideal.points[0], &noisy.points[0], &cxl_noisy.points[0]);
    // RXL stays lossless under noise...
    assert!(noisy_p.failures.is_clean());
    assert_eq!(noisy_p.injected_messages, noisy_p.delivered_messages);
    // ...and pays for it in retry/replay latency relative to its own
    // ideal-channel baseline.
    assert!(
        noisy_p.stats.mean > ideal_p.stats.mean,
        "retries must cost latency: noisy {} vs ideal {}",
        noisy_p.stats.mean,
        ideal_p.stats.mean
    );
    assert!(noisy_p.stats.max > ideal_p.stats.max);
    // Baseline CXL is *not* faster for its reliability discount: its
    // survivors pay the same go-back-N waits for detected drops plus the
    // stale-NACK stall tail, so RXL's lossless mean stays within a small
    // factor of CXL's survivor mean — the retry/replay cost RXL pays is
    // bounded by what CXL already pays while additionally failing.
    assert!(
        noisy_p.stats.mean <= 1.5 * cxl_p.stats.mean,
        "RXL mean {} must not blow past CXL survivor mean {}",
        noisy_p.stats.mean,
        cxl_p.stats.mean
    );
    // (That CXL *fails* at accelerated operating points while RXL stays
    // clean is pinned at scale by `tests/fabric_crosscheck.rs` and
    // `tests/chaos_scenarios.rs`; this test pins the latency side.)
}

#[test]
fn sweep_reports_are_bit_identical_across_thread_counts() {
    let make = || {
        sweep(
            ProtocolVariant::Rxl,
            ChannelErrorModel::random(1e-4),
            vec![0.10, 0.40],
            ArrivalProcess::poisson(1.0),
        )
    };
    let run_with_threads = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("shim pool build is infallible");
        pool.install(|| make().run())
    };
    let reference = run_with_threads(1);
    for threads in [2, 4] {
        let report = run_with_threads(threads);
        for (a, b) in reference.points.iter().zip(&report.points) {
            assert_eq!(
                a.histogram, b.histogram,
                "{threads} threads: histograms must merge bit-identically"
            );
        }
        assert_eq!(
            format!("{reference:?}"),
            format!("{report:?}"),
            "{threads} threads: whole report must be bit-identical"
        );
    }
}
