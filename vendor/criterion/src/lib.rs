//! Offline shim for the subset of the `criterion` API used in this workspace.
//!
//! The container this repo builds in has no network access to crates.io, so
//! the `[[bench]]` targets link against this minimal harness instead. It
//! keeps the `criterion_group!` / `criterion_main!` / `Criterion` /
//! `BenchmarkGroup` / `Bencher` call shapes, times each benchmark with a
//! short calibrated loop, and prints mean ns/iter (plus throughput when
//! configured). No warm-up analysis, outlier rejection, or HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark. Kept short: these benches gate CI
/// compilation, not statistical rigor.
const MEASURE_TIME: Duration = Duration::from_millis(60);
const MAX_ITERS: u64 = 1 << 20;

/// Throughput annotation, echoed alongside the timing line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the timing loop.
pub struct Bencher {
    /// Mean nanoseconds per iteration, recorded by `iter`.
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Calibrates and times `f`, recording mean ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: find an iteration count filling MEASURE_TIME.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= MEASURE_TIME || iters >= MAX_ITERS {
                self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                self.iters = iters;
                return;
            }
            iters = match elapsed.as_nanos() {
                0 => iters * 8,
                ns => {
                    let scale = MEASURE_TIME.as_nanos() as f64 / ns as f64;
                    ((iters as f64 * scale.min(8.0)).ceil() as u64).clamp(iters + 1, MAX_ITERS)
                }
            };
        }
    }
}

fn report(id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let ns = bencher.ns_per_iter;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(b) => {
            let gib = b as f64 / ns * 1e9 / (1u64 << 30) as f64;
            format!("  {gib:.3} GiB/s")
        }
        Throughput::Elements(e) => {
            let meps = e as f64 / ns * 1e9 / 1e6;
            format!("  {meps:.3} Melem/s")
        }
    });
    println!(
        "bench {id:<50} {ns:>14.1} ns/iter  ({} iters){}",
        bencher.iters,
        rate.unwrap_or_default()
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim uses a fixed measure time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(name, &b, None);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
