//! Offline shim for the subset of the `proptest` API used in this workspace.
//!
//! The container this repo builds in has no network access to crates.io, so
//! this crate reimplements the property-testing surface the rxl test suite
//! relies on: the [`proptest!`] macro (including `#![proptest_config(..)]`,
//! `name in strategy` bindings and `name: type` shorthand), strategies for
//! ranges / tuples / `any::<T>()` / [`collection::vec`] / [`Strategy::prop_map`]
//! / [`prop_oneof!`], plus `prop_assert!` / `prop_assert_eq!` /
//! `prop_assert_ne!` / `prop_assume!`.
//!
//! Differences from upstream proptest, deliberately accepted:
//! * **No shrinking** — a failing case reports its seed instead of a minimal
//!   counterexample. Re-run with `PROPTEST_SEED=<seed>` to reproduce it.
//! * Case generation is purely random (deterministic per test name), not
//!   coverage-guided.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Each `fn` becomes a `#[test]` that runs
/// `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases: u32 = config.cases;
            let base_seed: u64 = $crate::test_runner::base_seed(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let max_attempts: u32 = cases.saturating_mul(16).max(1024);
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < cases {
                if attempts >= max_attempts {
                    panic!(
                        "proptest shim: too many rejected cases ({} accepted of {} wanted after {} attempts)",
                        accepted, cases, attempts
                    );
                }
                let case_seed = $crate::test_runner::case_seed(base_seed, attempts);
                attempts += 1;
                // catch_unwind so a panic inside the body (index out of
                // bounds, unwrap, debug_assert in the code under test) still
                // reports the reproduction seed, not just the panic message.
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        let mut __proptest_rng =
                            $crate::test_runner::TestRng::from_seed_u64(case_seed);
                        $crate::__proptest_bind!(__proptest_rng; $($params)*);
                        let _ = &mut __proptest_rng;
                        { $body }
                        ::std::result::Result::Ok(())
                    },
                ));
                match outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => accepted += 1,
                    ::std::result::Result::Ok(::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject,
                    )) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    )) => {
                        panic!(
                            "proptest case failed (reproduce with PROPTEST_SEED={:#x}): {}",
                            case_seed, msg
                        );
                    }
                    ::std::result::Result::Err(payload) => {
                        panic!(
                            "proptest case panicked (reproduce with PROPTEST_SEED={:#x}): {}",
                            case_seed,
                            $crate::test_runner::panic_message(&payload)
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly (or by weight) among several strategies with a common
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::union_arm($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_arm($strat)),+
        ])
    };
}
