//! Runner plumbing: per-test deterministic seeding, the case RNG, config.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream proptest defaults to 256; the shim generates cases quickly
        // but 64 keeps the full workspace suite snappy while still giving
        // good coverage for the byte-level properties tested here.
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is skipped without counting.
    Reject,
    /// `prop_assert*!` failed; the whole property fails.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// The RNG handed to strategies for one test case.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the case RNG from a `u64`.
    pub fn from_seed_u64(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.0.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw from an integer range, delegating to the rand shim's
    /// `SampleRange` impls (which handle signed and full-domain ranges).
    pub fn random_range<T, U: rand::SampleRange<T>>(&mut self, range: U) -> T {
        rand::Rng::random_range(&mut self.0, range)
    }
}

/// Deterministic base seed for a property, derived from its full path, with
/// an optional `PROPTEST_SEED` env override (as printed by a failing case).
pub fn base_seed(test_path: &str) -> u64 {
    if let Ok(v) = std::env::var("PROPTEST_SEED") {
        let v = v.trim();
        let parsed = if let Some(hex) = v.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).ok()
        } else {
            v.parse::<u64>().ok()
        };
        if let Some(seed) = parsed {
            return seed;
        }
    }
    // FNV-1a over the test path.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Seed for attempt `attempt` of a property with base seed `base`.
pub fn case_seed(base: u64, attempt: u32) -> u64 {
    base ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Best-effort extraction of a panic payload's message (the two types
/// `panic!` actually produces), for re-raising with the case seed attached.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}
