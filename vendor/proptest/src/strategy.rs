//! The [`Strategy`] trait and the combinators the rxl test suite uses.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws a value from the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

// Delegates to the rand shim's `SampleRange`, which handles signed domains
// (i128 arithmetic) and full-width inclusive ranges without overflow.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_and_full_domain_ranges_generate_in_bounds() {
        let mut rng = TestRng::from_seed_u64(99);
        for _ in 0..500 {
            let a = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&a));
            let b = (i8::MIN..=i8::MAX).generate(&mut rng);
            let _ = b; // full-domain: any value is in bounds
            let c = (0u64..=u64::MAX).generate(&mut rng);
            let _ = c;
            let d = (isize::MIN..0).generate(&mut rng);
            assert!(d < 0);
        }
        // Full-domain inclusive ranges must not collapse to a constant.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..32 {
            seen.insert((0u64..=u64::MAX).generate(&mut rng));
        }
        assert!(seen.len() > 16);
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Boxes one `prop_oneof!` arm; a free function so type inference can unify
/// the arms' value types.
pub fn union_arm<T, S>(s: S) -> BoxedStrategy<T>
where
    S: Strategy<Value = T> + 'static,
{
    Box::new(s)
}

/// `prop_oneof!` backing type: picks one of several strategies per case.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Uniform choice among `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let arms: Vec<_> = arms.into_iter().map(|a| (1u32, a)).collect();
        let total_weight = arms.len() as u64;
        Union { arms, total_weight }
    }

    /// Weighted choice among `arms`.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! total weight must be positive"
        );
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut draw = rng.below(self.total_weight);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if draw < w {
                return arm.generate(rng);
            }
            draw -= w;
        }
        unreachable!("weighted draw out of range")
    }
}
