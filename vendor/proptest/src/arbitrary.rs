//! `any::<T>()` and the [`Arbitrary`] trait for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        out
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
