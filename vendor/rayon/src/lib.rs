//! Offline shim for the subset of the `rayon` API used in this workspace.
//!
//! The container this repo builds in has no network access to crates.io, so
//! this crate provides real (scoped-thread) data parallelism behind the
//! `into_par_iter().map(..).collect()` shape that `rxl_sim` uses. Results are
//! always collected **in input order**, so any computation that is
//! deterministic per item is deterministic overall, regardless of how many
//! worker threads run — the property `rxl_sim`'s reproducibility tests pin.
//!
//! Thread count comes from a [`ThreadPool::install`] scope if one is active,
//! else `RAYON_NUM_THREADS` (like upstream rayon), falling back to
//! `std::thread::available_parallelism()`.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// Mirrors `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

std::thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`].
    static THREAD_COUNT_OVERRIDE: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

/// Number of worker threads the shim fans out across: an active
/// [`ThreadPool::install`] override, else `RAYON_NUM_THREADS`, else the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = THREAD_COUNT_OVERRIDE.with(|c| c.get()) {
        return n;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Error mirroring `rayon::ThreadPoolBuildError` (the shim cannot fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rayon-shim thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Mirrors `rayon::ThreadPoolBuilder` for explicit thread-count control.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads the pool fans out across.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n.max(1));
        self
    }

    /// Builds the pool. Infallible in the shim; `Result` kept for API parity.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Mirrors `rayon::ThreadPool`: [`ThreadPool::install`] scopes a thread
/// count without touching process-global state, so tests can compare
/// thread counts race-free.
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing any parallel
    /// iterators it executes (on this thread).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = THREAD_COUNT_OVERRIDE.with(|c| c.replace(self.num_threads));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREAD_COUNT_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(previous);
        f()
    }

    /// The thread count this pool installs (resolved against the defaults).
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(current_num_threads)
    }
}

/// Conversion into a (shim) parallel iterator. Items are materialised
/// up front; fine for the bounded trial/work lists this workspace uses.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// `par_iter()` over a collection, yielding references.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_par!(u16, u32, u64, usize, i32, i64);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// A materialised parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// The one combinator chain the workspace needs: `map` then `collect`/`sum`.
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Applies `f` to every item across worker threads.
    fn map<F, R>(self, f: F) -> ParMap<Self::Item, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send;

    /// Collects items (identity map).
    fn collect<C: FromIterator<Self::Item>>(self) -> C;
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn map<F, R>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Result of [`ParallelIterator::map`]; terminal ops execute the fan-out.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F, R> ParMap<T, F>
where
    T: Send,
    F: Fn(T) -> R + Sync,
    R: Send,
{
    fn run(self) -> Vec<R> {
        let n_threads = current_num_threads().max(1);
        let n_items = self.items.len();
        if n_threads == 1 || n_items <= 1 {
            let f = self.f;
            return self.items.into_iter().map(f).collect();
        }
        let chunk = n_items.div_ceil(n_threads);
        let f = &self.f;
        let mut chunks: Vec<Vec<T>> = Vec::new();
        let mut items = self.items;
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(chunk));
            chunks.push(std::mem::replace(&mut items, rest));
        }
        let mut out: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                // Propagate worker panics with their original payload, as
                // upstream rayon does.
                match h.join() {
                    Ok(mapped) => out.push(mapped),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        out.into_iter().flatten().collect()
    }

    /// Executes the map across threads and collects results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Executes the map and sums the results.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        self.run().into_iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u64> = (0u64..0).into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u64> = (5u64..6).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![6]);
    }

    #[test]
    fn par_iter_over_slice() {
        let data = vec![1u64, 2, 3, 4];
        let out: Vec<u64> = data.par_iter().map(|&x| x * x).collect();
        assert_eq!(out, vec![1, 4, 9, 16]);
    }

    #[test]
    fn sum_matches_sequential() {
        let s: u64 = (0u64..100).into_par_iter().map(|x| x).sum();
        assert_eq!(s, 4950);
    }

    #[test]
    fn install_scopes_the_thread_count_to_the_closure() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let outside = crate::current_num_threads();
        let (inside, result) = pool.install(|| {
            let inside = crate::current_num_threads();
            let out: Vec<u64> = (0u64..100).into_par_iter().map(|x| x + 1).collect();
            (inside, out)
        });
        assert_eq!(inside, 3);
        assert_eq!(result, (1u64..101).collect::<Vec<_>>());
        // The override does not leak past install().
        assert_eq!(crate::current_num_threads(), outside);
    }

    #[test]
    fn nested_installs_restore_the_outer_override() {
        let outer = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let inner = crate::ThreadPoolBuilder::new()
            .num_threads(5)
            .build()
            .unwrap();
        outer.install(|| {
            assert_eq!(crate::current_num_threads(), 2);
            inner.install(|| assert_eq!(crate::current_num_threads(), 5));
            assert_eq!(crate::current_num_threads(), 2);
        });
    }
}
