//! Offline shim for the subset of the `rand` 0.9 API used in this workspace.
//!
//! The container this repo builds in has no network access to crates.io, so
//! the workspace vendors a minimal, dependency-free implementation instead of
//! the real crate. The generator is xoshiro256++ seeded via SplitMix64 —
//! high-quality and fully deterministic for a given seed, but **not**
//! bit-compatible with upstream `rand::rngs::StdRng` (ChaCha12). All golden
//! values in this repo's tests were produced against this implementation.
//!
//! Supported surface:
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`]
//! * [`RngCore`]: `next_u32`, `next_u64`, `fill_bytes`
//! * [`Rng`]: `random`, `random_range`, `random_bool`, `fill`
//! * [`rngs::StdRng`], [`rngs::SmallRng`]

#![forbid(unsafe_code)]

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// Core random-number generation, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seeding support, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed material for this generator.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from an `RngCore` (the shim's
/// equivalent of sampling from `StandardUniform`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   u64 => next_u64, i64 => next_u64,
                   usize => next_u64, isize => next_u64);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges that `Rng::random_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                self.start + draw as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                lo + draw as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples a value uniformly from `range`.
    fn random_range<T, U: SampleRange<T>>(&mut self, range: U) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p not in [0,1]");
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Module mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u16 = rng.random_range(10u16..20);
            assert!((10..20).contains(&x));
            let y: u8 = rng.random_range(1u8..=255);
            assert!(y >= 1);
            let z: usize = rng.random_range(0usize..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
