//! Concrete generators: xoshiro256++ behind the `StdRng` / `SmallRng` names.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ core. Small, fast, and passes BigCrush; plenty for
/// simulation workloads. Not cryptographically secure.
#[derive(Clone, Debug)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        Xoshiro256PlusPlus { s }
    }
}

/// The workspace's standard deterministic generator (shim for
/// `rand::rngs::StdRng`; internally xoshiro256++, not ChaCha12).
#[derive(Clone, Debug)]
pub struct StdRng(Xoshiro256PlusPlus);

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        StdRng(Xoshiro256PlusPlus::from_seed(seed))
    }
}

/// Alias kept for API compatibility with `rand::rngs::SmallRng`.
#[derive(Clone, Debug)]
pub struct SmallRng(Xoshiro256PlusPlus);

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        SmallRng(Xoshiro256PlusPlus::from_seed(seed))
    }
}
