//! Worked example: latency vs offered load on a leaf–spine pod.
//!
//! Four sessions share one spine. An offered-load ladder paces open-loop
//! traffic through the fabric (deterministic fixed-rate arrivals) and the
//! latency telemetry reports the full injection→delivery distribution per
//! point — the knee where the shared trunks saturate is detected
//! automatically. A second sweep shows what a bursty on/off arrival process
//! does to the tail at the same mean load, and a third adds channel noise
//! so RXL's go-back-N retries become visible as latency instead of flits.
//!
//! Run with:
//! ```text
//! cargo run --release --example latency_sweep
//! ```

use rxl::fabric::{FabricConfig, FabricTopology};
use rxl::link::{ChannelErrorModel, ProtocolVariant};
use rxl::load::{ArrivalProcess, LoadSweep, LoadSweepConfig, TrafficMatrix};

fn main() {
    let topology = FabricTopology::leaf_spine(2, 1, 2);
    println!(
        "topology : {} ({} sessions)\n",
        topology.name,
        topology.session_count()
    );

    // 1. The latency-vs-load curve, CXL vs RXL, error-free channel: the
    //    two protocols pace identically (the ISN costs no slots), so both
    //    curves knee at the same offered load.
    for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
        let sweep = LoadSweep::new(
            topology.clone(),
            FabricConfig::new(variant).with_channel(ChannelErrorModel::ideal()),
            LoadSweepConfig {
                loads: vec![0.05, 0.10, 0.20, 0.30, 0.50, 0.80],
                messages_per_session: 600,
                trials: 2,
                ..LoadSweepConfig::default()
            },
        );
        println!("{}", sweep.run());
    }

    // 2. Same mean load, bursty arrivals: an on/off process (line-rate
    //    bursts, long silences) at the sub-knee mean of 0.15 stretches the
    //    tail that fixed-rate pacing keeps short.
    for arrival in [
        ArrivalProcess::fixed(1.0),
        ArrivalProcess::on_off(1.0, 0.0, 120.0, 680.0),
    ] {
        let sweep = LoadSweep::new(
            topology.clone(),
            FabricConfig::new(ProtocolVariant::Rxl).with_channel(ChannelErrorModel::ideal()),
            LoadSweepConfig {
                loads: vec![0.15],
                messages_per_session: 600,
                trials: 2,
                arrival,
                ..LoadSweepConfig::default()
            },
        );
        let report = sweep.run();
        let p = &report.points[0];
        println!(
            "{:>7} arrivals @ mean load 0.15 : {}",
            report.arrival, p.stats
        );
    }
    println!();

    // 3. Channel noise as latency: at an accelerated BER every silent drop
    //    costs RXL a go-back-N round instead of a failure. The same sweep
    //    point, ideal vs noisy.
    for (label, channel) in [
        ("ideal ", ChannelErrorModel::ideal()),
        ("2e-4  ", ChannelErrorModel::random(2e-4)),
    ] {
        let sweep = LoadSweep::new(
            topology.clone(),
            FabricConfig::new(ProtocolVariant::Rxl).with_channel(channel),
            LoadSweepConfig {
                loads: vec![0.15],
                messages_per_session: 600,
                trials: 2,
                matrix: TrafficMatrix::Uniform,
                ..LoadSweepConfig::default()
            },
        );
        let report = sweep.run();
        let p = &report.points[0];
        println!("RXL @ load 0.15, BER {label}: {}", p.stats);
        assert!(
            p.failures.is_clean(),
            "RXL must stay lossless while paying retry latency"
        );
    }
}
