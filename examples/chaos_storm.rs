//! Worked fault-injection example: a BER storm on one leaf–spine uplink.
//!
//! A four-session leaf–spine pod runs at the paper's BER 10⁻⁶ operating
//! point. Between slots 800 and 2000 one leaf → spine trunk takes a ×60 BER
//! storm (a marginal cable, a bad optic). Baseline CXL's piggybacked-ACK
//! blind spot turns the storm's silent drops into application-visible
//! misordering that keeps poisoning the affected command queues after the
//! storm has cleared; RXL retries every drop and finishes spotless.
//!
//! Run with:
//! ```text
//! cargo run --release --example chaos_storm
//! ```

use rxl::chaos::{ChaosMonteCarlo, Scenario};
use rxl::fabric::{FabricConfig, FabricTopology, FabricWorkload};
use rxl::link::{ChannelErrorModel, ProtocolVariant};

fn main() {
    let topology = FabricTopology::leaf_spine(2, 1, 2);
    let uplink = topology.trunk_between(0, 2).expect("leaf 0 ⇄ spine trunk");
    let scenario =
        Scenario::named("uplink BER storm ×60").ber_storm(800, 1_200, vec![uplink], 60.0);

    println!("topology : {}", topology.name);
    println!("stormed  : {}", topology.describe_link(uplink));
    println!("scenario : {} (slots 800..2000)\n", scenario.name);

    for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
        let config = FabricConfig {
            max_slots: 30_000,
            ..FabricConfig::new(variant)
        }
        .with_channel(ChannelErrorModel::random(1e-6))
        .with_seed(0xC4A0_5EED);
        let workload = FabricWorkload::symmetric(topology.session_count(), 6_000, 8, 0xC4A05);
        let report =
            ChaosMonteCarlo::new(topology.clone(), config, scenario.clone(), 4).run(&workload);

        println!("=== {variant:?} ===");
        println!("epoch        | slots  | drops | failures | clean");
        println!("-------------|--------|-------|----------|-------");
        let names = ["before storm", "during storm", "after storm"];
        for (epoch, name) in report.epochs.iter().zip(names) {
            println!(
                "{name:<12} | {:>6} | {:>5} | {:>8} | {:>6}",
                epoch.slots,
                epoch.payload_drops,
                epoch.failures.total_failures(),
                epoch.failures.clean_deliveries,
            );
        }
        println!(
            "availability: mean {:.4}, worst trial {:.4}",
            report.availability_mean(),
            report.availability_min()
        );
        match report.earliest_fail_order_slot {
            Some(slot) => println!("first Fail_order event at slot {slot}\n"),
            None => println!("no Fail_order events\n"),
        }
    }

    println!(
        "Baseline CXL turns a transient storm into lasting damage (the\n\
         drop-poisoned command queues keep misordering after the channel\n\
         recovers); RXL's per-flit sequence checking retries every storm\n\
         drop and delivers 100% clean."
    );
}
