//! Quickstart: sending flits over an RXL session and watching the Implicit
//! Sequence Number catch a silent drop.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use rxl::core::{ReceiveError, RxlStack};
use rxl::flit::{Flit256, FlitHeader, MemOp, Message};

fn main() {
    // One endpoint sends, the other receives. In a real system each side
    // would own one stack per direction; a single direction is enough to see
    // the mechanism.
    let mut sender = RxlStack::new();
    let mut receiver = RxlStack::new();

    // Build three flits, each carrying one coherent read request. Note that
    // none of the headers carries a sequence number: the FSN field is free to
    // carry acknowledgements (here, an ACK for an imaginary upstream flit).
    let flits: Vec<Flit256> = (0..3u16)
        .map(|i| {
            let mut flit = Flit256::new(FlitHeader::ack(100 + i));
            flit.pack_messages(&[Message::request(
                MemOp::RdCurr,
                0x4000 + 64 * i as u64,
                0,
                i,
            )])
            .expect("one message always fits");
            flit
        })
        .collect();

    // Encode all three. Each call binds the flit to the sender's current
    // sequence number by folding it into the 64-bit CRC (ISN).
    let wires: Vec<_> = flits.iter().map(|f| sender.send(f)).collect();
    println!(
        "sender encoded {} flits (next sequence = {})",
        wires.len(),
        sender.next_seq()
    );

    // Deliver flit 0 normally.
    let f0 = receiver.receive(&wires[0]).expect("flit 0 arrives intact");
    println!(
        "received flit 0 carrying {:?}",
        f0.unpack_messages().unwrap()[0]
    );

    // Flit 1 is silently dropped by a switch. When flit 2 arrives, the
    // receiver recomputes the CRC with its *expected* sequence number (1) and
    // the check fails — corruption and drops are indistinguishable and both
    // trigger a retry, which is exactly the paper's design point.
    match receiver.receive(&wires[2]) {
        Err(ReceiveError::SequenceOrDataMismatch) => {
            println!("flit 2 rejected: the ISN ECRC exposed the dropped flit immediately")
        }
        other => panic!("unexpected outcome: {other:?}"),
    }

    // The link layer would now go back and replay from flit 1; the receiver
    // accepts the replayed flits in order.
    for (idx, wire) in wires.iter().enumerate().skip(1) {
        let flit = receiver.receive(wire).expect("replayed flit accepted");
        println!(
            "replayed flit {idx} delivered in order: {:?}",
            flit.unpack_messages().unwrap()[0]
        );
    }

    println!(
        "receiver accepted {} flits, rejected {}, expected sequence is now {}",
        receiver.accepted(),
        receiver.rejected(),
        receiver.expected_seq()
    );
}
