//! Virtual channels and minimal-adaptive routing on wrap-around fabrics.
//!
//! A saturated ring or torus with multi-hop trunk routes wedges with a
//! single lane per link: every trunk queue fills, each head flit waits on a
//! credit held around the wrap-around cycle, and the stall guard classifies
//! a credit deadlock. This example walks the fix in three acts:
//!
//! 1. **`vc_count = 1`** — the deadlock, reproduced on a saturated torus;
//! 2. **`vc_count = 2`** — the dateline escape VCs break the cycle and the
//!    same workload drains clean;
//! 3. **`vc_count = 3, adaptive`** — minimal-adaptive routing on top of the
//!    escape lanes spreads a hotspot over the less-occupied minimal
//!    alternative, lowering tail latency at the same offered load.
//!
//! Run with:
//! ```text
//! cargo run --release --example torus_adaptive
//! ```

use rxl::fabric::{FabricConfig, FabricSim, FabricTopology, FabricWorkload, RoutingTable};
use rxl::link::{ChannelErrorModel, ProtocolVariant};
use rxl::load::{LoadSweep, LoadSweepConfig, TrafficMatrix};

fn main() {
    // ------------------------------------------------------------------
    // Act 1 & 2: the saturated torus, with and without escape VCs.
    // ------------------------------------------------------------------
    let topology = FabricTopology::torus(4, 3, 2);
    println!(
        "=== saturated {} — {} sessions, {} switches ===\n",
        topology.name,
        topology.session_count(),
        topology.switch_count()
    );
    for vc_count in [1, 2] {
        let routing = RoutingTable::new(&topology);
        let config = FabricConfig {
            queue_capacity: 4,
            ..FabricConfig::new(ProtocolVariant::Rxl)
        }
        .with_channel(ChannelErrorModel::ideal())
        .with_vc_count(vc_count);
        let workload = FabricWorkload::symmetric(topology.session_count(), 1_500, 8, 7);
        let report = FabricSim::new(&topology, &routing, config).run(&workload);
        println!(
            "vc_count = {vc_count}: drained = {:<5} deadlock = {:<5} ({} slots, {} credit-stall slots)",
            report.drained, report.deadlock, report.slots, report.credit_stalls
        );
    }
    println!(
        "\nWith one lane per link the wrap-around trunks form a cyclic credit wait;\n\
         the dateline escape VC (flits switch to lane 1 when they cross each ring's\n\
         dateline) makes the lane-dependency graph acyclic, so the same saturated\n\
         workload drains.\n"
    );

    // ------------------------------------------------------------------
    // Act 3: minimal-adaptive routing under a hotspot.
    // ------------------------------------------------------------------
    println!("=== hotspot tail latency: deterministic vs minimal-adaptive ===\n");
    let sweep = |adaptive: bool| {
        LoadSweep::new(
            FabricTopology::torus(4, 4, 1),
            FabricConfig::new(ProtocolVariant::Rxl)
                .with_channel(ChannelErrorModel::ideal())
                .with_seed(0xADA7)
                .with_vc_count(3)
                .with_adaptive(adaptive),
            LoadSweepConfig {
                loads: vec![0.25],
                messages_per_session: 300,
                trials: 2,
                matrix: TrafficMatrix::Hotspot {
                    hot_sessions: 4,
                    boost: 3.0,
                },
                ..LoadSweepConfig::default()
            },
        )
        .run()
    };
    let deterministic = sweep(false);
    let adaptive = sweep(true);
    let (det, ada) = (&deterministic.points[0], &adaptive.points[0]);
    println!(
        "deterministic : p50 {:>4}  p90 {:>4}  p99 {:>4}  max {:>4}  (mean {:.1} slots)",
        det.stats.p50, det.stats.p90, det.stats.p99, det.stats.max, det.stats.mean
    );
    println!(
        "adaptive      : p50 {:>4}  p90 {:>4}  p99 {:>4}  max {:>4}  (mean {:.1} slots)",
        ada.stats.p50, ada.stats.p90, ada.stats.p99, ada.stats.max, ada.stats.mean
    );
    println!(
        "\nThe hotspot's DOR routes funnel through the same x-trunks; the adaptive VCs\n\
         drain onto the less-occupied minimal alternative (flowlet-gated so a session's\n\
         flit stream is never reordered), buying the p99 difference above at the same\n\
         offered load and VC budget."
    );
}
