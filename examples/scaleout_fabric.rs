//! Scale-out fabric comparison: drive bidirectional coherent traffic through
//! a switched path at an accelerated error rate and compare what reaches the
//! application layer under baseline CXL versus RXL.
//!
//! This is the workload the paper's introduction motivates: many accelerators
//! exchanging cache-line-sized messages through switching devices that
//! silently drop uncorrectable flits.
//!
//! Run with:
//! ```text
//! cargo run --release --example scaleout_fabric [levels] [ber] [trials]
//! ```

use rxl::link::{ChannelErrorModel, ProtocolVariant};
use rxl::sim::{request_stream, response_stream, MonteCarlo, SimConfig, TrafficPattern};

fn main() {
    let levels: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2);
    let ber: f64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2e-4);
    let trials: u64 = std::env::args()
        .nth(3)
        .and_then(|a| a.parse().ok())
        .unwrap_or(6);

    println!("scale-out fabric: {levels} switch level(s), accelerated BER {ber:.0e}, {trials} Monte-Carlo trials\n");

    // Each trial: a host issuing ordered data transfers over 16 command
    // queues (the Fig. 5b-style workload where ordering matters) and a device
    // streaming responses back.
    let downstream = request_stream(4_000, TrafficPattern::DataStream { cqids: 16 }, 2024);
    let upstream = response_stream(2_000, 16, 2025);

    for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
        let config = SimConfig::new(variant, levels).with_channel(ChannelErrorModel::random(ber));
        let mc = MonteCarlo::new(config, trials);
        let report = mc.run(&downstream, &upstream);

        println!("--- {} ---", variant.name());
        // `FailureCounts` / `SwitchStats` render their own counters.
        for block in [report.failures.to_string(), report.switches.to_string()] {
            for line in block.lines() {
                println!("  {line}");
            }
        }
        println!(
            "  retransmissions      : {}",
            report.links.flits_retransmitted
        );
        println!(
            "  mean bandwidth overhead : {:.3}%",
            report.mean_bandwidth_overhead() * 100.0
        );
        println!();
    }

    println!(
        "Expected shape (paper Section 7.1): both protocols see the same silent switch drops,\n\
         but only baseline CXL lets them surface as ordering/duplicate failures at the\n\
         application layer; RXL converts every drop into an ordinary retry."
    );
}
