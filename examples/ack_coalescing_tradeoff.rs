//! The ACK-coalescing trade-off (Section 7.2 of the paper).
//!
//! Baseline CXL has two unattractive options in switched fabrics:
//!
//! * keep piggybacking ACKs — cheap, but every ACK-carrying flit is blind to
//!   drops (the reliability hole of Fig. 4), and the exposure equals
//!   `p_coalescing`;
//! * send standalone ACK flits — safe, but the reverse direction burns
//!   bandwidth proportional to `p_coalescing` (up to 100 % without
//!   coalescing).
//!
//! RXL removes the trade-off: ACKs piggyback freely while every flit stays
//! sequence-protected. This example sweeps the coalescing level and prints
//! the analytic exposure/bandwidth curves plus a simulated cross-check.
//!
//! Run with:
//! ```text
//! cargo run --release --example ack_coalescing_tradeoff
//! ```

use rxl::analysis::{BandwidthModel, ReliabilityModel};
use rxl::link::{ChannelErrorModel, ProtocolVariant};
use rxl::sim::{request_stream, response_stream, PathSim, SimConfig, TrafficPattern};

fn main() {
    let bw = BandwidthModel::cxl3_x16();
    let mut rel = ReliabilityModel::cxl3_x16();

    println!("analytic trade-off at one switch level (paper Eqns (7), (12), (13)):\n");
    println!("  coalescing | p_coal | CXL piggyback ordering-FIT | CXL standalone-ACK bandwidth loss | RXL ordering-FIT | RXL bandwidth loss");
    for coalescing in [1u32, 2, 5, 10, 20, 50] {
        rel.p_coalescing = 1.0 / coalescing as f64;
        let cxl_fit = rel.fit_cxl_single_switch();
        let rxl_fit = rel.fit_rxl_single_switch();
        println!(
            "  {coalescing:>10} | {:>6.2} | {:>26.3e} | {:>33.1}% | {:>16.3e} | {:>17.3}%",
            rel.p_coalescing,
            cxl_fit,
            bw.loss_standalone_ack(rel.p_coalescing) * 100.0,
            rxl_fit,
            bw.loss_rxl_switched() * 100.0,
        );
    }

    println!(
        "\nsimulated cross-check at an accelerated BER (2e-4), one switch level, 2000 messages:\n"
    );
    println!(
        "  coalescing | protocol | ordering+duplicates | standalone ACK flits | retransmissions"
    );
    for coalescing in [1u32, 5, 20] {
        for variant in [
            ProtocolVariant::CxlPiggyback,
            ProtocolVariant::CxlStandaloneAck,
            ProtocolVariant::Rxl,
        ] {
            let mut config = SimConfig::new(variant, 1)
                .with_channel(ChannelErrorModel::random(2e-4))
                .with_seed(7);
            config.ack_coalescing = coalescing;
            let down = request_stream(2_000, TrafficPattern::DataStream { cqids: 8 }, 31);
            let up = response_stream(1_000, 8, 32);
            let report = PathSim::new(config).run(&down, &up);
            let failures = report.total_failures();
            println!(
                "  {coalescing:>10} | {:<24} | {:>19} | {:>20} | {:>15}",
                variant.name(),
                failures.ordering_failures + failures.duplicate_deliveries,
                report.host_link.standalone_acks_sent + report.device_link.standalone_acks_sent,
                report.host_link.flits_retransmitted + report.device_link.flits_retransmitted,
            );
        }
    }
    println!("\nExpected shape: CXL-piggyback trades reliability for bandwidth, CXL-standalone trades bandwidth for reliability, RXL gets both.");
}
