//! Fleet-level reliability projection for a large training job.
//!
//! The paper motivates RXL with the Llama-3.1 training run (16K accelerators,
//! 54 days) and the Delta system's 6.9-hour NVLink mean time between errors.
//! This example projects the paper's per-device FIT analysis (Section 7.1)
//! onto such a fleet: how often would silent ordering failures interrupt the
//! job under baseline CXL, and what does RXL buy?
//!
//! Run with:
//! ```text
//! cargo run --example llm_training_reliability [devices] [days] [levels]
//! ```

use rxl::analysis::ReliabilityModel;
use rxl::core::{FabricSpec, ProtocolKind};

fn main() {
    let devices: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16_384);
    let days: f64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(54.0);
    let levels: u32 = std::env::args()
        .nth(3)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);
    let job_hours = days * 24.0;

    println!(
        "training fleet: {devices} accelerators, {days} day job ({job_hours:.0} h), {levels} switch level(s)\n"
    );
    let model = ReliabilityModel::cxl3_x16();
    println!(
        "per-link operating point: BER {:.0e}, FER_UC {:.0e}, 500M flits/s per device\n",
        model.ber, model.fer_uc
    );

    for kind in [ProtocolKind::Cxl, ProtocolKind::Rxl] {
        let spec = FabricSpec::new(kind, devices, levels);
        let projection = spec.project(job_hours);
        println!("--- {} ---", kind.name());
        println!(
            "  per-device FIT                 : {:.3e}",
            projection.per_device_fit
        );
        println!(
            "  fleet FIT                      : {:.3e}",
            projection.fabric_fit
        );
        if projection.fabric_mtbf_hours.is_finite() {
            println!(
                "  fleet MTBF                     : {:.3e} hours",
                projection.fabric_mtbf_hours
            );
        }
        println!(
            "  expected failures during the job: {:.3e}",
            projection.failures_per_job
        );
        let verdict = if projection.failures_per_job > 1.0 {
            "the job cannot complete without hitting this failure mode"
        } else if projection.failures_per_job > 1e-3 {
            "marginal: occasional interruptions expected"
        } else {
            "effectively immune to this failure mode"
        };
        println!("  verdict                        : {verdict}\n");
    }

    // Sensitivity: how the CXL exposure grows with switching depth while RXL
    // stays flat (the Fig. 8 story told at fleet scale).
    println!("expected interruptions during the job vs switching depth:");
    println!("  levels |        CXL |        RXL");
    for l in 0..=4u32 {
        let cxl = FabricSpec::new(ProtocolKind::Cxl, devices, l).project(job_hours);
        let rxl = FabricSpec::new(ProtocolKind::Rxl, devices, l).project(job_hours);
        println!(
            "  {l:>6} | {:>10.3e} | {:>10.3e}",
            cxl.failures_per_job, rxl.failures_per_job
        );
    }
}
