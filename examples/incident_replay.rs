//! Worked observability example: a BER storm scored as an SLO incident.
//!
//! The chaos engine replays an uplink BER storm over a paced leaf–spine
//! pod while an [`SloProbe`] rides along in each trial: injections,
//! deliveries and engine lifecycle events stream into fixed-width telemetry
//! windows, the windows feed error-budget burn rates against a latency +
//! availability SLO, and the burn series is scored against the incident
//! interval — burn during vs after, peak burn, time to recovery, and which
//! windows the fast/slow multi-window burn-rate alerts covered.
//!
//! A second, single-trial run attaches a bounded [`TraceRecorder`] and
//! exports the incident as structured traces: JSONL for grepping, and a
//! chrome://tracing / Perfetto-loadable span file.
//!
//! Run with:
//! ```text
//! cargo run --release --example incident_replay
//! ```

use rxl::chaos::{run_scenario_probed, Scenario};
use rxl::fabric::{FabricConfig, FabricTopology, FabricWorkload, RoutingTable};
use rxl::link::{ChannelErrorModel, ProtocolVariant};
use rxl::telemetry::{IncidentReplay, SloProbe, SloSpec};

fn main() {
    let topology = FabricTopology::leaf_spine(2, 1, 2);
    let uplink = topology.trunk_between(0, 2).expect("leaf 0 ⇄ spine trunk");
    let scenario =
        Scenario::named("uplink BER storm ×20").ber_storm(2_000, 2_000, vec![uplink], 20.0);
    let workload = FabricWorkload::symmetric(topology.session_count(), 12_000, 8, 0xC4A05);
    let window_slots = 500;

    println!("topology : {}", topology.name);
    println!("stormed  : {}", topology.describe_link(uplink));
    println!("scenario : {} (slots 2000..4000)\n", scenario.name);

    let config_for = |variant| {
        FabricConfig {
            max_slots: 120_000,
            ..FabricConfig::new(variant)
        }
        .with_channel(ChannelErrorModel::random(1e-5))
        .with_seed(0xC4A0_5EED)
        // Paced injection (10% of line rate): arrivals spread across the
        // run, so the windowed series shows the incident's shape instead of
        // collapsing into window 0.
        .with_offered_load(0.10)
    };

    for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
        let replay = IncidentReplay::new(
            topology.clone(),
            config_for(variant),
            scenario.clone(),
            4,
            window_slots,
            SloSpec::default(),
        );
        let report = replay.run(&workload);

        println!("=== {variant:?} ===");
        println!("window | slots       | injected | avail  | p99.9 | burn     | alerts");
        println!("-------|-------------|----------|--------|-------|----------|-------");
        for (w, b) in report.stats.iter().zip(&report.burn) {
            println!(
                "{:>6} | {:>5}..{:<5} | {:>8} | {:.4} | {:>5} | {:>8.3} | {}{}",
                w.index,
                w.start_slot,
                w.start_slot + window_slots,
                w.injected,
                w.availability,
                w.latency.p999,
                b.burn,
                if b.fast_alert { "F" } else { "-" },
                if b.slow_alert { "S" } else { "-" },
            );
        }
        if let Some(score) = &report.score {
            println!(
                "scorecard: burn during {:.2}, after {:.2}, peak {:.2}; recovery {}; alerts fast={} slow={}\n",
                score.burn_during,
                score.burn_after,
                score.peak_burn,
                match score.time_to_recovery_slots {
                    Some(t) => format!("{t} slots after the fault cleared"),
                    None => "not reached in-run".to_string(),
                },
                score.fast_alert_windows,
                score.slow_alert_windows,
            );
        }
    }

    // Single CXL trial with a bounded trace ring attached: the same probe
    // seam, now recording per-message spans and engine instants.
    let routing = RoutingTable::new(&topology);
    let (_, probe) = run_scenario_probed(
        &topology,
        &routing,
        config_for(ProtocolVariant::CxlPiggyback),
        &workload,
        &scenario,
        SloProbe::with_trace(window_slots, 4_096),
    );
    let trace = probe.trace().expect("trace recorder attached");
    println!("=== structured incident trace (CXL, 1 trial) ===");
    println!(
        "spans recorded: {} (dropped {}), instants: {} (dropped {})",
        trace.spans().count(),
        trace.dropped_spans(),
        trace.instants().count(),
        trace.dropped_instants(),
    );
    let jsonl = trace.to_jsonl();
    println!("first trace lines (JSONL export):");
    for line in jsonl.lines().take(4) {
        println!("  {line}");
    }
    // The final JSONL line is the meta record carrying the bounded ring's
    // truncation counters — downstream tooling checks it before trusting
    // span coverage, so surface it here too.
    if let Some(meta) = jsonl.lines().last() {
        println!("meta line (ring truncation accounting):");
        println!("  {meta}");
    }
    let dir = std::env::temp_dir();
    let jsonl_path = dir.join("rxl_incident_trace.jsonl");
    let chrome_path = dir.join("rxl_incident_trace_chrome.json");
    std::fs::write(&jsonl_path, &jsonl).expect("write jsonl trace");
    std::fs::write(&chrome_path, trace.to_chrome_trace()).expect("write chrome trace");
    println!(
        "wrote {} and {} (load the latter in chrome://tracing or Perfetto)",
        jsonl_path.display(),
        chrome_path.display(),
    );

    println!(
        "\nThe same storm, two SLO stories: both protocols' latency budgets\n\
         burn while the replay backlog drains, but only baseline CXL taints\n\
         the availability budget — its drained backlog includes Fail_order\n\
         corruption, while RXL's tail is pure latency and its availability\n\
         stays at 1.0."
    );
}
