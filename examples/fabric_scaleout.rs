//! Fabric-scale scale-out: many concurrent host–device sessions sharing the
//! switches of a real topology, driven end to end through the link/FEC/CRC
//! stack by the `rxl-fabric` discrete-event simulator.
//!
//! Where the single-path simulator (`rxl-sim`) models one host–device
//! *path*, this example simulates the *fabric*: a leaf–spine pod and a
//! ring, each carrying every session concurrently with credit backpressure
//! on the shared trunks, under
//! baseline CXL and under RXL. It closes with the analytic cross-check: the
//! measured `Fail_order` rate versus `FabricSpec`'s projection at the same
//! accelerated operating point.
//!
//! Run with:
//! ```text
//! cargo run --release --example fabric_scaleout [ber] [trials] [messages]
//! ```

use rxl::fabric::{FabricConfig, FabricMonteCarlo, FabricTopology, FabricWorkload};
use rxl::link::{ChannelErrorModel, ProtocolVariant};
use rxl::prelude::{FabricSimOptions, FabricSpec, ProtocolKind};

fn main() {
    let arg = |idx: usize, default: f64| -> f64 {
        std::env::args()
            .nth(idx)
            .and_then(|a| a.parse().ok())
            .unwrap_or(default)
    };
    let ber = arg(1, 1e-4);
    let trials = arg(2, 4.0) as u64;
    let messages = arg(3, 600.0) as usize;

    println!("fabric scale-out: accelerated BER {ber:.0e}, {trials} trials, {messages} messages/session\n");

    for topology in [
        FabricTopology::leaf_spine(2, 2, 2),
        FabricTopology::ring(4, 1, 2),
    ] {
        println!(
            "=== {} — {} sessions, {} switches ===",
            topology.name,
            topology.session_count(),
            topology.switch_count()
        );
        for variant in [ProtocolVariant::CxlPiggyback, ProtocolVariant::Rxl] {
            let config = FabricConfig::new(variant).with_channel(ChannelErrorModel::random(ber));
            let workload = FabricWorkload::symmetric(topology.session_count(), messages, 16, 2024);
            let report = FabricMonteCarlo::new(topology.clone(), config, trials).run(&workload);

            println!("--- {} ---", variant.name());
            // The Display impls render every counter; no hand-formatting.
            println!("{}", indent(&report.failures.to_string()));
            println!("{}", indent(&report.switches.to_string()));
            println!(
                "  undetected-drop events   : {}",
                report.undetected_drop_events
            );
            println!("  replay-window leaks      : {}", report.replay_leak_events);
            println!("  credit stalls            : {}", report.credit_stalls);
            println!(
                "  drained trials           : {}/{}",
                report.drained_trials, report.trials
            );
            println!();
        }
    }

    // The analytic cross-check through the rxl-core bridge: a 16K-device
    // fabric behind two switching levels, projected analytically and
    // simulated at the accelerated BER.
    println!("=== FabricSpec::simulate cross-check (16K devices, 2 levels) ===");
    let opts = FabricSimOptions {
        ber,
        trials,
        messages_per_session: messages,
        ..FabricSimOptions::default()
    };
    for kind in [ProtocolKind::Cxl, ProtocolKind::Rxl] {
        let spec = FabricSpec::new(kind, 16_384, 2);
        let ev = spec.simulate(&opts);
        let cc = &ev.crosscheck;
        println!(
            "{:>3}: empirical {:.3e} FIT vs analytic {:.3e} FIT per device ({} Fail_order events in {} payload flits; agree within 3 sigma: {})",
            kind.name(),
            cc.empirical_fit,
            cc.analytic_fit,
            cc.undetected_drop_events,
            cc.payload_flits,
            cc.agrees_within(3.0),
        );
    }
    println!(
        "\nExpected shape (paper Sections 6.4, 7.1): both protocols suffer the same silent switch\n\
         drops, but only baseline CXL turns them into application-visible ordering failures; RXL's\n\
         ISN converts every drop into an ordinary retry, and the simulator's empirical FIT backs\n\
         the analytic projection at the accelerated operating point."
    );
}

/// Indents a multi-line block by two spaces for nested report sections.
fn indent(block: &str) -> String {
    block
        .lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
