//! A layer-by-layer walkthrough of the RXL flit pipeline (Fig. 3, Fig. 6 and
//! Fig. 7 of the paper): message packing, ISN CRC, interleaved FEC, the
//! switch's link-layer view, and the endpoint's transport-layer view.
//!
//! Run with:
//! ```text
//! cargo run --example isn_walkthrough
//! ```

use rxl::crc::{catalog::FLIT_CRC64, IsnCrc64};
use rxl::fec::InterleavedFec;
use rxl::flit::{Flit256, FlitHeader, MemOp, Message, RxlFlitCodec};

fn main() {
    // ------------------------------------------------------------------
    // 1. Transaction layer: pack messages into a 240-byte payload.
    // ------------------------------------------------------------------
    let messages = vec![
        Message::request(MemOp::RdOwn, 0x1_0000, 3, 41),
        Message::request(MemOp::RdShared, 0x1_0040, 3, 42),
        Message::response_ok(7, 9),
    ];
    let mut flit = Flit256::new(FlitHeader::ack(0));
    flit.pack_messages(&messages).unwrap();
    println!(
        "packed {} transaction messages into the 240B payload",
        messages.len()
    );

    // ------------------------------------------------------------------
    // 2. Transport layer: the ISN CRC binds payload AND sequence number.
    // ------------------------------------------------------------------
    let isn = IsnCrc64::new(FLIT_CRC64);
    let seq = 5u16;
    let ecrc = isn.encode(&flit.header.to_bytes(), &flit.payload, seq);
    println!("ISN ECRC for sequence {seq}: 0x{ecrc:016X}");
    println!(
        "  verify with expected sequence 5 -> {}",
        isn.verify(&flit.header.to_bytes(), &flit.payload, 5, ecrc)
    );
    println!(
        "  verify with expected sequence 6 -> {}  (a dropped flit would look exactly like this)",
        isn.verify(&flit.header.to_bytes(), &flit.payload, 6, ecrc)
    );

    // ------------------------------------------------------------------
    // 3. Link layer: the 250B protected block gets 6B of 3-way interleaved
    //    Reed-Solomon parity, for a 256B wire flit.
    // ------------------------------------------------------------------
    let codec = RxlFlitCodec::new();
    let wire = codec.encode(&flit, seq);
    println!(
        "wire flit is {} bytes ({}B data + 6B FEC)",
        wire.len(),
        wire.len() - 6
    );

    // A 3-byte burst anywhere on the wire is repaired by the FEC alone — the
    // switch never needs the CRC.
    let fec = InterleavedFec::cxl_flit();
    let mut corrupted = wire;
    corrupted[80] ^= 0xFF;
    corrupted[81] ^= 0x55;
    corrupted[82] ^= 0x0F;
    let mut block = corrupted.to_vec();
    let fec_result = fec.decode(&mut block);
    println!(
        "switch FEC view of a 3-byte burst: {:?} (corrected back to the original: {})",
        fec_result.outcome,
        block[..250] == wire[..250]
    );

    // ------------------------------------------------------------------
    // 4. Endpoint: FEC first, then the ISN ECRC against the expected
    //    sequence number.
    // ------------------------------------------------------------------
    let decode_ok = codec.decode(&corrupted, 5);
    println!(
        "endpoint decode with expected seq 5: fec accepted = {}, ecrc ok = {}",
        decode_ok.fec.accepted(),
        decode_ok.ecrc_ok
    );
    let decode_wrong_seq = codec.decode(&corrupted, 6);
    println!(
        "endpoint decode with expected seq 6: fec accepted = {}, ecrc ok = {}  <- drop detected",
        decode_wrong_seq.fec.accepted(),
        decode_wrong_seq.ecrc_ok
    );

    // ------------------------------------------------------------------
    // 5. The recovered flit still carries the original messages.
    // ------------------------------------------------------------------
    let recovered = decode_ok.flit.unwrap();
    assert_eq!(recovered.unpack_messages().unwrap(), messages);
    println!("recovered all {} messages intact", messages.len());
}
